// Multi-tenant serving front-end over the attacker-facing Oracle stack.
//
// The paper's threat model is a *deployed* accelerator answering queries
// from many clients at once — one attacker hiding among benign tenants,
// each tenant under its own query budget and detection window. The bare
// `Oracle` API cannot express that: its decorators keep one global
// policy state for the whole deployment. `OracleService` redesigns the
// serving surface around **sessions**:
//
//   OracleService service(stack.top(), config);   // shared deployment
//   Session alice = service.open_session(per_tenant_policy);
//   Session eve   = service.open_session(attacker_policy);
//   auto label    = alice.submit_label(u);         // std::future<int>
//
// Per-session policy (BudgetLedger, DetectorScreen, deterministic
// sensing-noise stream, exposure options) is enforced at submission, on
// the submitting thread, before anything reaches the shared backend —
// so one tenant exhausting its budget or tripping the detector never
// perturbs another tenant's service. The whole-deployment decorators
// (QueryBudgetOracle, DetectorOracle, …) remain the single-session
// special case and still compose *below* the service as shared
// infrastructure defenses.
//
// Submissions are asynchronous (futures) and **coalesced**: a flusher
// thread gathers individually-submitted vectors from all sessions into
// `query_*_batch` calls against the backend — the one-GEMM fast path the
// kernel layer provides — flushing when `max_batch` rows are pending or
// after `max_wait`. Coalescing preserves submission order and groups
// only *consecutive* same-kind submissions into one backend batch, so a
// coalesced stream is bit-identical to the same queries issued serially
// (the backend's batched paths already guarantee batch = in-order
// scalars; see crossbar.hpp). Per-session sensing noise is drawn from a
// counter-based stream indexed by the session's own query ordinal, so it
// too is independent of how submissions were packed into batches.
//
// **Result cache.** An optional content-addressed cache sits in front of
// the per-replica coalescers: a scalar submission whose (kind, replica,
// input bytes) triple was answered before is served on the submitting
// thread without touching the backend. Hits still run the hitting
// session's *own* policy — exposure checks, detector screening, counter
// updates, and (for power) the session's private noise stream at its own
// ordinal — so a cached reply is exactly what that session would have
// been told, just sooner. Whether hits also charge the BudgetLedger is
// an explicit ServiceConfig decision (see CacheConfig). The cache is off
// by default, making the default service bit-identical to the uncached
// fleet. Sharing one cache across tenants opens a classic cross-tenant
// timing channel (hit latency leaks other tenants' query contents — see
// the service/mnist/cache-timing scenario); CacheConfig::partition_by_
// session closes it by giving every session a private key space.
//
// **Replica fleets.** A service may front N backend replicas instead of
// one — the same programmed weights deployed on N physically distinct
// (simulated) crossbars, each with its own device-variation signature
// (see xbar::replica_variation_seed and core::deploy_victim_fleet).
// Each replica owns a private coalescing queue, flusher thread, and
// recycled gather scratch, so replicas never contend on a shared queue
// lock; they share at most the one nesting-safe ThreadPool for the GEMM
// work underneath. A RoutingPolicy picks the replica at submission
// (after per-session policy ran): session-affine (all of a session's
// traffic lands on one replica — the default, which keeps the
// single-session case bit-identical to a single-backend service),
// round-robin (whole submissions rotate over replicas), or least-loaded
// (fewest enqueued-but-unanswered rows). Units are never split across
// replicas, and each replica's flusher preserves the arrival order of
// the units routed to it — so the answer stream of replica k is
// bit-identical to serially issuing those same queries against replica
// k alone.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "xbarsec/attrib/engine.hpp"
#include "xbarsec/core/decorators.hpp"
#include "xbarsec/core/oracle.hpp"

namespace xbarsec::core {

/// Thrown when a session is used after it (or its service) was closed.
class SessionClosed : public Error {
public:
    explicit SessionClosed(const std::string& what) : Error("session closed: " + what) {}
};

/// How a multi-replica service picks the backend replica for each
/// submission. Routing happens per *unit* (one scalar submission or one
/// explicitly-submitted batch) after per-session policy has admitted it;
/// a unit is never split across replicas.
enum class RoutingPolicy {
    /// Every submission of a session lands on the same replica (the
    /// session id picks it round-robin at open_session time). A single
    /// session therefore sees exactly one device — bit-identical to
    /// running against that replica alone, which is what keeps the
    /// committed single-session scenario goldens unchanged.
    SessionAffine,

    /// Units rotate over replicas via one atomic cursor, regardless of
    /// session. Maximises mixing: an attacker's query stream is answered
    /// by all N device signatures interleaved.
    RoundRobin,

    /// Each unit goes to the replica with the fewest
    /// enqueued-but-unanswered rows at submission time (ties take the
    /// lowest index). Adapts to replicas that answer slower (deeper
    /// stacks, contended pools).
    LeastLoaded,
};

std::string to_string(RoutingPolicy policy);

/// Parses "session-affine" / "round-robin" / "least-loaded" (the
/// to_string spellings); throws ConfigError otherwise.
RoutingPolicy parse_routing_policy(const std::string& name);

/// Content-addressed result cache over the serving layer. Keys are
/// (query kind, replica index, input-row bytes) — plus the session id
/// when partitioned — so a cached answer is always one the *same*
/// backend produced for the *same* bytes. Only scalar (one-row)
/// submissions are cached or served from the cache; explicitly-submitted
/// batches always reach a backend (they keep the stack's all-or-nothing
/// batch semantics and would fragment the key space).
///
/// Cached values are the backend's answers *before* per-session
/// transforms: a power hit re-applies the hitting session's own noise
/// stream at the session's own ordinal (which advances on hits exactly
/// as on misses). On a deterministic stack a hit is therefore
/// bit-identical to recomputation; on a noisy stack it replays the first
/// measurement instead of drawing a fresh one — enable it there only
/// when that freeze is acceptable.
struct CacheConfig {
    /// Off by default: the cache-off service is bit-identical to the
    /// uncached fleet (committed goldens depend on this).
    bool enabled = false;

    /// Maximum cached entries; least-recently-used entries are evicted
    /// beyond it. Must be > 0 when enabled.
    std::size_t capacity = 2048;

    /// Give every session a private key space. Closes the cross-tenant
    /// cache-timing side channel (one tenant can no longer learn whether
    /// another tenant queried some input by timing its own probe) at the
    /// cost of per-tenant duplication inside `capacity`.
    bool partition_by_session = false;

    /// Whether a cache hit charges the session's BudgetLedger. Default
    /// true: the paper's budget semantics cap what a client *learns*,
    /// and a hit answers a query just like a miss does. Set false to
    /// meter only backend work — cheaper per hit (no ledger mutex) but
    /// an attacker can then replay popular inputs for free
    /// (bench_service's hit_charge series measures the cost of keeping
    /// the default). Session counters always count hits either way.
    bool hits_charge_budget = true;
};

/// Cross-session attribution tier (ServiceConfig::attribution): the
/// service-level memory that outlives sessions. When enabled, every
/// admitted submission feeds an attrib::AttributionEngine (per-source
/// windows, a global probe-population alert window, and query-overlap
/// campaign clustering), and admission reacts to the *pooled* picture:
///
///   * AdaptivePolicy bands are selected on the session's whole
///     campaign window (same-source siblings and overlap-merged
///     sessions included), so rotating sessions no longer resets the
///     suspicion state or restarts the detection warm-up;
///   * rate limiting moves from per-session to per-source token buckets
///     (`source_rate`): a rotated session of the same source draws from
///     the same bucket — and distinct benign tenants stop contending
///     for one shared allowance;
///   * while the deployment-level alert is hot, the adaptive warm-up is
///     suspended and a submission carrying detector-flagged or
///     suspicious-shaped rows is escalated per-query (raw withheld,
///     strongest-band sensing noise), which closes the window between a
///     forged source's first query and its campaign being clustered.
///
/// Off by default: the attribution-off service is bit-identical to the
/// PR 8 admission path (no hashing, no engine, no source buckets).
struct AttributionConfig {
    bool enabled = false;

    /// Detection/clustering parameters of the engine.
    attrib::EngineConfig engine{};

    /// Per-*source* token bucket applied at admission next to (and
    /// typically instead of) SessionConfig::rate. All sessions opened
    /// with the same SessionConfig::source share one bucket; source 0
    /// (anonymous) sessions share the anonymous bucket. Default off.
    RateLimit source_rate{};

    /// Time source for the source buckets (nullptr = steady clock).
    TokenBucket::ClockFn source_clock = nullptr;
};

/// Service-wide knobs: the worker pool behind the backend's batched
/// query paths and the coalescing-queue flush policy.
struct ServiceConfig {
    /// Workers for a service-owned ThreadPool (0 = none: the backend
    /// runs its batched paths serially unless it already carries a
    /// pool). Ignored when `pool` is set.
    std::size_t workers = 0;

    /// External pool to use instead of owning one (not owned; must
    /// outlive the service). The scenario benches pass their shared pool
    /// through here. With a replica fleet, all replica flushers share
    /// this one nesting-safe pool for their backend GEMMs.
    ThreadPool* pool = nullptr;

    /// Flush a replica's coalescing queue once this many input rows are
    /// pending on it. Also the maximum rows per backend batch call —
    /// larger submissions are split, in order, which the backend
    /// reproduces bit-identically.
    ///
    /// Note that `max_batch` is a *cap*, not a target: a flush can never
    /// carry more rows than the clients had in flight when the window
    /// closed, so the realised mean batch saturates at roughly
    /// (clients × per-client pipeline depth) regardless of how high
    /// max_batch is raised — and `max_wait` closes the window early
    /// whenever the in-flight supply drains before max_batch fills.
    /// BENCH_service.json's `depth@*` series isolates exactly this
    /// interaction (the historical "max_batch@1024 plateaus near 437
    /// rows" anomaly: 8 clients × 64-deep pipelines can never have 1024
    /// rows pending).
    std::size_t max_batch = 256;

    /// Flush latency bound: pending work never waits longer than this
    /// for more submissions to coalesce with. See the max_batch note —
    /// under a finite client pipeline this window, not max_batch, is
    /// what usually closes a batch. Zero means *flush immediately*:
    /// the flusher skips the coalescing window outright (no zero-length
    /// timed wait spinning the flusher hot) and batches only what was
    /// already pending when it woke.
    std::chrono::microseconds max_wait{200};

    /// Replica-selection policy (single-replica services ignore it).
    RoutingPolicy routing = RoutingPolicy::SessionAffine;

    /// Content-addressed result cache in front of the coalescers.
    CacheConfig cache;

    /// Cross-session attribution tier (off by default — bit-identical
    /// to the attribution-free admission path).
    AttributionConfig attribution;
};

/// Per-session policy: what this client may see and what it costs them.
/// All-default = a transparent pass-through session (the single-client
/// special case every pre-service scenario runs through).
struct SessionConfig {
    /// Per-session query budget (all-zero = unlimited). Charged
    /// all-or-nothing at submission; a refused submission throws
    /// QueryBudgetExceeded and charges (and counts) nothing.
    QueryBudget budget{};

    /// When set, every inference submission is screened through this
    /// (shared, already enrolled) detector with a session-private
    /// flagged/screened window. Blocking sessions throw QueryRefused at
    /// submission. The detector object itself must outlive the session.
    const sidechannel::CurrentSignatureDetector* detector = nullptr;
    bool block_flagged = false;

    /// Per-session additive Gaussian sensing noise on the power channel
    /// (weight units). Drawn from a counter-based stream indexed by the
    /// session's power-query ordinal, so the values a session sees are a
    /// pure function of (noise_seed, how many power queries it has made)
    /// — bit-identical whether its submissions coalesced or ran serially,
    /// and independent of other sessions' traffic.
    double power_noise_sigma = 0.0;
    std::uint64_t noise_seed = 0x5E5510Ull;

    /// Exposure options for this client (AND-ed with the deployment's
    /// own OracleOptions, which still apply at the backend).
    bool expose_raw_outputs = true;
    bool expose_power = true;

    /// Per-session token-bucket rate limit: sustained query rows/sec
    /// with a burst allowance, spent at submission (cache hits included
    /// — a hit answers a query exactly like a miss does). A submission
    /// the bucket cannot cover throws RateLimited and charges (and
    /// counts) nothing; a submission refused *after* rate admission
    /// (budget, shutdown) refunds its tokens. Default off — the
    /// admission path is bit-identical to an unlimited session.
    RateLimit rate{};

    /// Time source for the rate bucket; nullptr = the monotonic system
    /// clock. Tests inject a manually-advanced clock so rate-limited
    /// admission (and the coalesced == serial bit-identity contract
    /// under it) is deterministic.
    TokenBucket::ClockFn rate_clock = nullptr;

    /// Suspicion-scaled defenses: the session's own DetectorScreen
    /// flagged-fraction picks an AdaptivePolicy band that multiplies
    /// power_noise_sigma and can withhold raw outputs. Requires
    /// `detector` (no screen ⇒ suspicion stays 0 and no band ever
    /// applies). Off (empty bands) by default — bit-identical to the
    /// static policy. Under ServiceConfig::attribution the band is
    /// selected on the session's pooled *campaign* window instead of
    /// the per-session window alone.
    AdaptivePolicy adaptive{};

    /// Admission identity: which authenticated principal (API key,
    /// account) opened this session. 0 = anonymous. Attribution pools
    /// suspicion windows and token buckets per source, so rotating
    /// sessions under one source buys the attacker nothing; a *forged*
    /// (fresh-per-rotation) source defeats the identity pooling but not
    /// the query-overlap campaign clustering. Ignored when
    /// ServiceConfig::attribution is off.
    attrib::SourceId source = 0;
};

namespace detail {
struct ServiceState;
struct SessionState;
}  // namespace detail

class OracleService;

/// A client's handle onto the service. Movable; closing (or destroying)
/// it rejects *new* submissions with SessionClosed while in-flight ones
/// complete normally. Distinct sessions are safe to drive fully
/// concurrently, and a single session's submissions may also race
/// (ordinals and charges are atomic) at the cost of nondeterministic
/// interleaving order.
class Session {
public:
    Session() = default;
    ~Session();
    Session(Session&&) noexcept = default;
    Session& operator=(Session&&) noexcept;
    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Async scalar submissions: enqueue one vector, get a future. The
    /// coalescer packs concurrently pending vectors into one batched
    /// backend call.
    std::future<int> submit_label(tensor::Vector u);
    std::future<tensor::Vector> submit_raw(tensor::Vector u);
    std::future<double> submit_power(tensor::Vector u);

    /// Async batched submissions: all rows of U as one unit (charged
    /// all-or-nothing against the session budget).
    std::future<std::vector<int>> submit_labels(tensor::Matrix U);
    std::future<tensor::Matrix> submit_raw_batch(tensor::Matrix U);
    std::future<tensor::Vector> submit_power_batch(tensor::Matrix U);

    /// Synchronous Oracle view of this session: query_* submits with an
    /// immediate-flush hint and waits. Existing attack and side-channel
    /// entry points (collect_queries, probe_columns, evaluate_*) take
    /// Oracle& and therefore run unchanged through a session. counters()
    /// / reset_counters() act on the *session* counters.
    Oracle& oracle();

    /// This session's accepted-query counters (monotone between resets;
    /// refused submissions are not counted).
    QueryCounters counters() const;
    void reset_counters();

    /// Budget ledger view (what reset_counters does NOT clear — the
    /// budget keeps protecting the deployment across counter resets).
    /// Sessions with an unlimited budget keep no ledger and report
    /// zeros here; counters() is their telemetry.
    QueryCounters budget_spent() const;

    /// Detection window (zeros when the session has no detector).
    std::uint64_t screened() const;
    std::uint64_t flagged() const;
    double flagged_fraction() const;

    std::uint64_t id() const;

    /// The replica this session's traffic lands on under
    /// RoutingPolicy::SessionAffine (assigned round-robin from the
    /// session id at open_session; other policies ignore it).
    std::size_t home_replica() const;

    bool open() const;

    /// Rejects new submissions (SessionClosed); in-flight ones complete
    /// normally, and the session's counters stay readable. Idempotent.
    void close();

private:
    friend class OracleService;
    explicit Session(std::shared_ptr<detail::SessionState> state);

    std::shared_ptr<detail::SessionState> state_;
    std::unique_ptr<Oracle> oracle_view_;
};

/// Thread-safe serving front-end: owns the per-replica coalescing
/// queues, their flusher threads, and (optionally) the worker pool;
/// serves any number of concurrently open sessions over one shared
/// backend Oracle stack — or a fleet of N replica stacks with a
/// RoutingPolicy. Backends are not owned and must outlive the service
/// (each is typically a DecoratorStack top over a CrossbarOracle —
/// infrastructure defenses below the service apply to all tenants of
/// that replica).
class OracleService {
public:
    explicit OracleService(Oracle& backend, ServiceConfig config = {});

    /// Fleet constructor: one coalescing queue + flusher per replica.
    /// All replicas must agree on inputs()/outputs() (same programmed
    /// weights; device state may differ per replica). Throws ConfigError
    /// on an empty fleet, a null entry, or mismatched shapes.
    explicit OracleService(const std::vector<Oracle*>& replicas, ServiceConfig config = {});

    /// Drains every replica queue (pending submissions complete) and
    /// joins the flushers. Open sessions are closed.
    ~OracleService();

    OracleService(const OracleService&) = delete;
    OracleService& operator=(const OracleService&) = delete;

    /// Opens a new session with the given per-client policy.
    Session open_session(SessionConfig config = {});

    std::size_t inputs() const;
    std::size_t outputs() const;
    std::size_t replica_count() const;

    /// Service-wide accepted-query counters: the fleet aggregate
    /// (saturating sum of the per-replica counters, since the last
    /// service-wide reset). Monotone between resets. Counts rows that
    /// reached a replica — cache hits never route, so they appear in
    /// cache_hits() and the sessions' own counters, not here.
    QueryCounters counters() const;

    /// Accepted-query counters of the rows routed to replica `replica`
    /// since the last service-wide reset. Monotone between resets;
    /// summing over replicas gives counters().
    QueryCounters replica_counters(std::size_t replica) const;

    /// Resets the service-wide and per-replica counters (sessions' own
    /// counters are per-tenant state and stay put).
    void reset_counters();

    /// Coalescing statistics: backend batch calls made, and total rows
    /// they carried (rows / flushes = realised mean coalesced batch).
    /// The no-argument forms aggregate over the fleet.
    std::uint64_t flushed_batches() const;
    std::uint64_t flushed_rows() const;
    std::uint64_t flushed_batches(std::size_t replica) const;
    std::uint64_t flushed_rows(std::size_t replica) const;

    /// Rows currently enqueued-but-unanswered on replica `replica` —
    /// the load signal LeastLoaded routing reads (a racy snapshot).
    std::size_t queue_depth(std::size_t replica) const;

    std::size_t sessions_opened() const;

    /// Result-cache telemetry (all zero when the cache is disabled).
    /// hits + misses = cache-eligible probes (scalar submissions that
    /// passed per-session policy); entries is the current population,
    /// bounded by CacheConfig::capacity. Monotone except entries.
    std::uint64_t cache_hits() const;
    std::uint64_t cache_misses() const;
    std::uint64_t cache_evictions() const;
    std::size_t cache_entries() const;
    double cache_hit_rate() const;  ///< hits / (hits + misses), 0 when idle

    /// Attribution telemetry, next to the per-replica counters. The
    /// aggregate forms are zero/empty/false on an attribution-free
    /// service; the keyed accessors throw ConfigError for an unknown
    /// source/session or when attribution is disabled (the replica
    /// accessor convention).
    bool attribution_enabled() const;
    bool attribution_alert() const;
    std::size_t attribution_source_count() const;
    std::vector<attrib::SourceId> attribution_sources() const;
    attrib::SourceCounters attribution_source_counters(attrib::SourceId source) const;
    std::size_t attribution_campaign_count() const;
    std::vector<attrib::CampaignCounters> attribution_campaigns() const;
    attrib::CampaignCounters attribution_campaign_of(std::uint64_t session) const;

    /// The engine's JSON snapshot ("{}" when attribution is off) —
    /// what bench_attrib embeds in BENCH_attrib.json.
    std::string attribution_snapshot() const;

    /// The pool this service carries for the backend's batched paths:
    /// the external `config.pool` if one was given, else the owned pool
    /// (`config.workers > 0`), else null. The service does not rewire
    /// the backends — callers connect it (e.g. via
    /// `BackendOracle::set_thread_pool(service.pool())`).
    ThreadPool* pool();

    const ServiceConfig& config() const;

private:
    std::shared_ptr<detail::ServiceState> state_;
    std::unique_ptr<ThreadPool> owned_pool_;
    std::vector<std::thread> flushers_;  ///< one per replica
};

}  // namespace xbarsec::core
