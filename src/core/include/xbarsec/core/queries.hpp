// Attacker query collection for the Section-IV surrogate pipeline, plus
// Oracle-based bridges into the sidechannel probing/search primitives.
#pragma once

#include <cstdint>

#include "xbarsec/attack/surrogate.hpp"
#include "xbarsec/core/oracle.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/data/dataset.hpp"
#include "xbarsec/sidechannel/search.hpp"

namespace xbarsec::core {

/// How query inputs are drawn and what is recorded.
struct QueryPlan {
    std::size_t count = 100;  ///< Q

    /// When true, record raw output vectors; when false, one-hot of the
    /// oracle's label (Figure 5 rows 2/4 vs rows 1/3).
    bool raw_outputs = true;

    /// Record the power side channel alongside each query (requires the
    /// deployment to expose it). When false, `power` is all-zero and only
    /// λ=0 surrogates are meaningful.
    bool record_power = true;

    std::uint64_t seed = 1;
};

/// Draws `plan.count` inputs from `pool` (without replacement while
/// possible, then uniformly with replacement), queries the oracle for
/// outputs (+ power) through the batched interface, and packages them for
/// the surrogate trainer.
attack::QueryDataset collect_queries(Oracle& oracle, const data::Dataset& pool,
                                     const QueryPlan& plan);

/// Probes every input column through the oracle's power channel (weight
/// units). Each probe is a counted power query; defensive decorators on
/// the oracle apply to every measurement.
sidechannel::ProbeResult probe_columns(Oracle& oracle,
                                       const sidechannel::ProbeOptions& options = {});

/// Query-efficient search for the largest probed column 1-norm, driving
/// sidechannel::find_argmax through the oracle's power channel.
sidechannel::SearchResult find_argmax(Oracle& oracle, const data::ImageShape& shape,
                                      sidechannel::SearchStrategy strategy,
                                      const sidechannel::SearchOptions& options = {});

// ---- session-based entry points ---------------------------------------------
//
// The same attacker pipelines driven through an OracleService session:
// queries route submit → coalesce → batched backend call, so one
// tenant's collection rides the shared GEMM path while other tenants'
// traffic interleaves. Results are bit-identical to the Oracle&
// overloads on the session's own stream (per-session policy applies).

attack::QueryDataset collect_queries(Session& session, const data::Dataset& pool,
                                     const QueryPlan& plan);

sidechannel::ProbeResult probe_columns(Session& session,
                                       const sidechannel::ProbeOptions& options = {});

sidechannel::SearchResult find_argmax(Session& session, const data::ImageShape& shape,
                                      sidechannel::SearchStrategy strategy,
                                      const sidechannel::SearchOptions& options = {});

}  // namespace xbarsec::core
