// Figure 3: sensitivity maps vs 1-norm maps.
//
// Each panel pair is (mean |∂L/∂u| over the test set, probed column
// 1-norms), rendered as per-pixel grids. The bench prints ASCII heat maps
// and writes CSV grids for re-plotting; the per-pair Pearson correlation
// quantifies the visual match the paper describes.
#pragma once

#include <string>

#include "xbarsec/core/victim.hpp"
#include "xbarsec/data/dataset.hpp"

namespace xbarsec::core {

/// One (sensitivity map, 1-norm map) panel pair.
struct Fig3Panel {
    std::string label;
    data::ImageShape shape;
    tensor::Vector sensitivity_map;  ///< mean |∂L/∂u| over the test set
    tensor::Vector l1_map;           ///< probed column 1-norms (weight units)
    double correlation = 0.0;        ///< pearson(sensitivity_map, l1_map)
    double victim_test_accuracy = 0.0;
};

/// Trains one victim and produces its panel pair.
Fig3Panel run_fig3_config(const data::DataSplit& split, const std::string& dataset_name,
                          const OutputConfig& output, const VictimConfig& base_config);

/// Produces the panel pair for an already-trained, already-deployed
/// victim; the 1-norm map is probed through `attacker` (the top of any
/// decorator stack), so defended deployments show their degraded map.
Fig3Panel run_fig3_on(Oracle& attacker, const TrainedVictim& victim, const data::Dataset& test,
                      const std::string& label);

}  // namespace xbarsec::core
