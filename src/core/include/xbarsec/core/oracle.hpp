// The attacker-facing query interface (the paper's threat model).
//
// Attack code never touches the victim's weights: it sees only this
// oracle, which exposes (depending on the scenario being modelled)
//   * classification labels        (always — the deployed model's output)
//   * raw output vectors           (Figure 5 rows 2/4)
//   * power readings               (the side channel, Eq. 5)
// and counts every query so experiments can report attacker cost. Power
// readings are normalised to weight units (i_total / weight_scale for a
// 1 V read), which models an attacker who knows the device family's
// conductance scale — the paper's implicit assumption.
#pragma once

#include <cstdint>

#include "xbarsec/common/error.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/xbar/xbar_network.hpp"

namespace xbarsec::core {

/// What the deployment exposes to the attacker.
struct OracleOptions {
    bool expose_raw_outputs = true;
    bool expose_power = true;
};

/// Thrown when a query kind is disabled by the deployment's options.
class AccessDenied : public Error {
public:
    explicit AccessDenied(const std::string& what) : Error("oracle access denied: " + what) {}
};

/// Query counters (attacker cost accounting).
struct QueryCounters {
    std::uint64_t inference = 0;  ///< label or raw-output queries
    std::uint64_t power = 0;      ///< total-current measurements
};

/// Black-box wrapper over a crossbar-deployed network.
class CrossbarOracle {
public:
    /// Takes ownership of the deployed hardware model.
    CrossbarOracle(xbar::CrossbarNetwork hardware, OracleOptions options = {});

    std::size_t inputs() const { return hardware_.inputs(); }
    std::size_t outputs() const { return hardware_.outputs(); }
    const OracleOptions& options() const { return options_; }

    /// Predicted class label for input u.
    int query_label(const tensor::Vector& u);

    /// Raw post-activation output vector. Throws AccessDenied when the
    /// deployment hides raw outputs.
    tensor::Vector query_raw(const tensor::Vector& u);

    /// Power side channel in weight units: i_total(u) / weight_scale.
    /// Throws AccessDenied when power measurement is not possible.
    double query_power(const tensor::Vector& u);

    /// Adapter for sidechannel::probe_columns and the obfuscation
    /// wrappers; still counted. (Weight units, as query_power.)
    sidechannel::TotalCurrentFn power_measure_fn();

    const QueryCounters& counters() const { return counters_; }
    void reset_counters() { counters_ = {}; }

    /// The underlying hardware — for experiment *evaluation* only (e.g.
    /// scoring adversarial examples); attack code must not call this.
    const xbar::CrossbarNetwork& hardware_for_evaluation() const { return hardware_; }

private:
    xbar::CrossbarNetwork hardware_;
    OracleOptions options_;
    QueryCounters counters_;
};

}  // namespace xbarsec::core
