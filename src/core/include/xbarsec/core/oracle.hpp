// The attacker-facing query interface (the paper's threat model).
//
// Attack code never touches the victim's weights: it sees only an
// `Oracle`, which exposes (depending on the scenario being modelled)
//   * classification labels        (always — the deployed model's output)
//   * raw output vectors           (Figure 5 rows 2/4)
//   * power readings               (the side channel, Eq. 5)
// and counts every query so experiments can report attacker cost.
//
// The interface is polymorphic so that deployments compose:
//   * `CrossbarOracle`  — the paper's hardware model (batched internally
//     through the crossbar's GEMM fast path);
//   * `SoftwareOracle`  — a float SingleLayerNet backend modelling an
//     ideal deployment (surrogate / FGSM baselines without crossbar cost);
//   * decorator oracles (decorators.hpp) — obfuscation, noise, query
//     budgets, and inline detection stack on top of any backend.
//
// Every query kind has a batched variant (`query_labels`,
// `query_raw_batch`, `query_power_batch`); backends route these through
// dense linear algebra and an optional common::ThreadPool instead of
// per-vector loops, which is what makes heavy-traffic experiments viable.
//
// Power readings are normalised to weight units (i_total / weight_scale
// for a 1 V read), which models an attacker who knows the device family's
// conductance scale — the paper's implicit assumption.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "xbarsec/common/error.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/nn/network.hpp"
#include "xbarsec/sidechannel/probe.hpp"
#include "xbarsec/xbar/xbar_network.hpp"

namespace xbarsec::core {

/// What the deployment exposes to the attacker.
struct OracleOptions {
    bool expose_raw_outputs = true;
    bool expose_power = true;
};

/// Thrown when a query kind is disabled by the deployment's options.
class AccessDenied : public Error {
public:
    explicit AccessDenied(const std::string& what) : Error("oracle access denied: " + what) {}
};

/// Query counters (attacker cost accounting). A snapshot — the live
/// counters inside a backend (or an OracleService session) are atomic,
/// so batched queries may be issued from thread-pool workers and
/// snapshots taken concurrently are always monotone per bucket between
/// resets.
struct QueryCounters {
    std::uint64_t inference = 0;  ///< label or raw-output queries
    std::uint64_t power = 0;      ///< total-current measurements

    /// Saturating sum: the buckets are independently monotone and on a
    /// long-lived multi-tenant service their sum could in principle
    /// exceed 2^64 − 1; saturation keeps total() monotone instead of
    /// wrapping.
    std::uint64_t total() const { return saturating_add(inference, power); }

    /// a + b clamped to 2^64 − 1 instead of wrapping.
    static std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
        const std::uint64_t t = a + b;
        return t < a ? ~std::uint64_t{0} : t;
    }

    /// Accumulates another snapshot bucket-wise with saturation. Fleet
    /// aggregates (sums of per-replica counters) must use this: each
    /// replica bucket saturates independently, so a plain + across
    /// near-max replicas could wrap and break total()'s monotonicity.
    void add_saturating(const QueryCounters& other) {
        inference = saturating_add(inference, other.inference);
        power = saturating_add(power, other.power);
    }
};

/// Abstract attacker-facing query interface. Attack and side-channel code
/// takes `Oracle&` and never a concrete backend; experiment code builds
/// the backend (and any defensive decorator stack) and hands the top of
/// the stack to the attacker.
class Oracle {
public:
    virtual ~Oracle() = default;

    virtual std::size_t inputs() const = 0;
    virtual std::size_t outputs() const = 0;

    /// Predicted class label for input u.
    virtual int query_label(const tensor::Vector& u) = 0;

    /// Raw post-activation output vector. Throws AccessDenied when the
    /// deployment hides raw outputs.
    virtual tensor::Vector query_raw(const tensor::Vector& u) = 0;

    /// Power side channel in weight units: i_total(u) / weight_scale.
    /// Throws AccessDenied when power measurement is not possible.
    virtual double query_power(const tensor::Vector& u) = 0;

    /// Batched queries: one result per row of U, counted per row. The
    /// defaults loop over the scalar queries; backends override them with
    /// GEMM-path implementations (decorators forward to preserve the
    /// backend's fast path).
    virtual std::vector<int> query_labels(const tensor::Matrix& U);
    virtual tensor::Matrix query_raw_batch(const tensor::Matrix& U);
    virtual tensor::Vector query_power_batch(const tensor::Matrix& U);

    /// Attacker cost so far. Decorators delegate to the wrapped oracle,
    /// so each physical query is counted exactly once, at the backend.
    virtual QueryCounters counters() const = 0;
    virtual void reset_counters() = 0;

    /// Adapter for sidechannel::probe_columns and the obfuscation
    /// wrappers; still counted (the lambda routes through query_power on
    /// whichever stack layer it was taken from). Weight units.
    sidechannel::TotalCurrentFn power_measure_fn();
};

/// Base for concrete backends: owns the access policy and the atomic
/// attacker-cost counters. Decorators do NOT derive from this — they
/// forward queries, so the backend counts each physical query once.
class BackendOracle : public Oracle {
public:
    const OracleOptions& options() const { return options_; }

    QueryCounters counters() const override;
    void reset_counters() override;

    /// Pool used by the batched query paths (nullptr = run serially).
    void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
    ThreadPool* thread_pool() const { return pool_; }

protected:
    explicit BackendOracle(OracleOptions options) : options_(options) {}
    BackendOracle(BackendOracle&& other) noexcept;
    BackendOracle& operator=(BackendOracle&& other) noexcept;
    BackendOracle(const BackendOracle&) = delete;
    BackendOracle& operator=(const BackendOracle&) = delete;

    void count_inference(std::uint64_t n = 1) {
        inference_count_.fetch_add(n, std::memory_order_relaxed);
    }
    void count_power(std::uint64_t n = 1) { power_count_.fetch_add(n, std::memory_order_relaxed); }
    void require_raw_access() const;
    void require_power_access() const;

private:
    OracleOptions options_;
    ThreadPool* pool_ = nullptr;
    std::atomic<std::uint64_t> inference_count_{0};
    std::atomic<std::uint64_t> power_count_{0};
};

/// Black-box wrapper over a crossbar-deployed network (the paper's
/// deployment model).
class CrossbarOracle : public BackendOracle {
public:
    /// Takes ownership of the deployed hardware model.
    explicit CrossbarOracle(xbar::CrossbarNetwork hardware, OracleOptions options = {});

    std::size_t inputs() const override { return hardware_.inputs(); }
    std::size_t outputs() const override { return hardware_.outputs(); }

    int query_label(const tensor::Vector& u) override;
    tensor::Vector query_raw(const tensor::Vector& u) override;
    double query_power(const tensor::Vector& u) override;

    std::vector<int> query_labels(const tensor::Matrix& U) override;
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override;
    tensor::Vector query_power_batch(const tensor::Matrix& U) override;

    /// The underlying hardware — for experiment *evaluation* only (e.g.
    /// scoring adversarial examples); attack code must not call this.
    const xbar::CrossbarNetwork& hardware_for_evaluation() const { return hardware_; }

private:
    xbar::CrossbarNetwork hardware_;
    double weight_scale_ = 1.0;
};

/// Software (float) backend: the same query interface served by a plain
/// SingleLayerNet, modelling an ideal noise-free deployment. Its power
/// channel is the ideal one-sided crossbar's reading in weight units,
/// p(u) = Σ_j u_j·‖W[:,j]‖₁ — the identity Eq. 9's surrogate loss relies
/// on. Useful for surrogate/FGSM baselines without crossbar cost.
class SoftwareOracle : public BackendOracle {
public:
    explicit SoftwareOracle(nn::SingleLayerNet net, OracleOptions options = {});

    std::size_t inputs() const override { return net_.inputs(); }
    std::size_t outputs() const override { return net_.outputs(); }

    int query_label(const tensor::Vector& u) override;
    tensor::Vector query_raw(const tensor::Vector& u) override;
    double query_power(const tensor::Vector& u) override;

    std::vector<int> query_labels(const tensor::Matrix& U) override;
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override;
    tensor::Vector query_power_batch(const tensor::Matrix& U) override;

    /// The backing network — for experiment evaluation only.
    const nn::SingleLayerNet& network_for_evaluation() const { return net_; }

private:
    nn::SingleLayerNet net_;
    tensor::Vector column_l1_;  ///< cached ‖W[:,j]‖₁ for the power channel
};

}  // namespace xbarsec::core
