// Figure 5: surrogate-based black-box attacks with power information.
//
// For each (query count Q, power-loss weight λ) cell, across independent
// runs:
//   1. train a fresh oracle and deploy it on the crossbar;
//   2. draw Q query inputs from the training pool, record oracle outputs
//      (raw vectors or one-hot labels) and power readings;
//   3. fit a linear surrogate with Eq. 9's loss;
//   4. report the surrogate's test accuracy (panels a/d/g/j) and the
//      oracle's accuracy on FGSM(ε) adversarial examples crafted on the
//      surrogate (panels b/e/h/k);
//   5. compare each λ > 0 against λ = 0 with a two-sample t-test — the
//      significance asterisks of panels c/f/i/l.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xbarsec/common/table.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/core/decorators.hpp"
#include "xbarsec/core/victim.hpp"
#include "xbarsec/stats/descriptive.hpp"

namespace xbarsec::core {

struct Fig5Options {
    std::vector<std::size_t> query_counts = {2, 10, 50, 100, 500, 1000, 4000};
    /// λ sweep; must contain 0 (the no-power baseline).
    std::vector<double> lambdas = {0.0, 0.002, 0.004, 0.006, 0.008, 0.01};
    std::size_t runs = 5;
    /// Raw outputs (rows 2/4) vs label-only (rows 1/3).
    bool raw_outputs = false;
    double fgsm_eps = 0.1;
    std::uint64_t seed = 2022;
    /// Adversarial evaluation subsample of the test set (0 = all).
    std::size_t eval_limit = 0;
    /// Optional pool for run-level parallelism.
    ThreadPool* pool = nullptr;
    /// Optional defensive decorator stack applied to each run's deployed
    /// oracle before the attacker collects queries (scenario entries
    /// describe defended fig5 sweeps with this hook). The backend is
    /// passed so defenses can scale to the deployed weights.
    std::function<void(DecoratorStack&, CrossbarOracle&)> defense;
};

/// Aggregated results of one (λ, Q) cell.
struct Fig5Cell {
    double lambda = 0.0;
    std::size_t queries = 0;
    stats::Summary surrogate_accuracy;   ///< over runs
    stats::Summary oracle_adv_accuracy;  ///< over runs
    /// Attack-efficacy improvement vs λ=0: mean adv-acc(λ=0) − mean
    /// adv-acc(λ). Positive = the power term helps. 0 for the λ=0 cells.
    double improvement = 0.0;
    double p_value = 1.0;  ///< two-sample t-test vs λ=0 (1 for λ=0 cells)
};

struct Fig5Result {
    std::string label;
    Fig5Options options;
    std::vector<Fig5Cell> cells;  ///< ordered by (lambda, query count)
    double oracle_clean_accuracy_mean = 0.0;

    const Fig5Cell& cell(double lambda, std::size_t queries) const;
};

/// Runs the full sweep for one dataset/output configuration.
Fig5Result run_fig5(const data::DataSplit& split, const std::string& dataset_name,
                    const OutputConfig& output, const VictimConfig& base_config,
                    const Fig5Options& options);

/// Default surrogate optimisation schedule for a query count Q (exposed
/// for tests; more epochs for smaller Q).
nn::TrainConfig surrogate_schedule(std::size_t queries);

/// Data-scaled variant: additionally sets the learning rate to
/// 5 / mean_sq_input_norm (clamped to [1e-4, 0.2]) so the schedule stays
/// inside the gradient-descent stability region for any input dimension.
nn::TrainConfig surrogate_schedule(std::size_t queries, double mean_sq_input_norm);

/// Renders the three panel tables: surrogate accuracy, adversarial oracle
/// accuracy, and improvement-with-significance.
Table render_fig5_surrogate_accuracy(const Fig5Result& result);
Table render_fig5_adversarial_accuracy(const Fig5Result& result);
Table render_fig5_improvement(const Fig5Result& result);

}  // namespace xbarsec::core
