// Composable defensive decorators over the attacker-facing Oracle.
//
// Each decorator wraps an existing Oracle (by reference — it does not own
// the backend) and alters one aspect of the query interface:
//   * ObfuscatedOracle  — power-channel obfuscation via the
//     sidechannel::obfuscation transforms (dither / uniform dummies /
//     randomised dummies), in weight units;
//   * NoisyPowerOracle  — additive Gaussian measurement noise on the
//     power channel (a sensing-resolution model);
//   * QueryBudgetOracle — hard attacker-cost cap; throws
//     QueryBudgetExceeded once the budget is spent (batched queries are
//     charged all-or-nothing, before they reach the backend);
//   * DetectorOracle    — feeds every inference input to a
//     sidechannel::CurrentSignatureDetector inline, counting (and
//     optionally refusing) flagged queries.
//
// Decorators compose arbitrarily: QueryBudgetOracle(ObfuscatedOracle(
// CrossbarOracle)) is a budget-capped attacker against an obfuscated
// deployment. Counting happens exactly once, at the backend — decorators
// forward queries and delegate counters() inward, so wrapping never
// double-counts, no matter how deep the stack. DecoratorStack owns a
// dynamically-built chain (scenario registry entries describe stacks as
// data).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "xbarsec/core/oracle.hpp"
#include "xbarsec/sidechannel/detector.hpp"
#include "xbarsec/sidechannel/obfuscation.hpp"

namespace xbarsec::core {

/// Base decorator: forwards every query to the wrapped oracle. Derived
/// classes override only the aspect they alter. Batched queries forward
/// as batches so the backend's GEMM path is preserved through the stack.
class OracleDecorator : public Oracle {
public:
    std::size_t inputs() const override { return inner_.inputs(); }
    std::size_t outputs() const override { return inner_.outputs(); }

    int query_label(const tensor::Vector& u) override { return inner_.query_label(u); }
    tensor::Vector query_raw(const tensor::Vector& u) override { return inner_.query_raw(u); }
    double query_power(const tensor::Vector& u) override { return inner_.query_power(u); }

    std::vector<int> query_labels(const tensor::Matrix& U) override {
        return inner_.query_labels(U);
    }
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override {
        return inner_.query_raw_batch(U);
    }
    tensor::Vector query_power_batch(const tensor::Matrix& U) override {
        return inner_.query_power_batch(U);
    }

    /// Counters live at the backend; delegating keeps every physical
    /// query counted exactly once regardless of stack depth.
    QueryCounters counters() const override { return inner_.counters(); }
    void reset_counters() override { inner_.reset_counters(); }

    Oracle& inner() { return inner_; }
    const Oracle& inner() const { return inner_; }

protected:
    explicit OracleDecorator(Oracle& inner) : inner_(inner) {}
    OracleDecorator(const OracleDecorator&) = delete;
    OracleDecorator& operator=(const OracleDecorator&) = delete;

private:
    Oracle& inner_;
};

// ---- power obfuscation ------------------------------------------------------

/// Which sidechannel::obfuscation transform to apply to the power channel.
struct ObfuscationConfig {
    enum class Kind {
        Dither,        ///< zero-mean Gaussian supply-rail dither
        UniformDummy,  ///< identical always-on dummy load per input line
        RandomDummy,   ///< randomised per-line dummy loads
    };

    Kind kind = Kind::Dither;

    /// Transform magnitude in weight units: dither σ, or the (maximum)
    /// dummy conductance. A natural scale is max_j ‖W[:,j]‖₁.
    double magnitude = 0.0;

    /// Seed for the dither stream / dummy draw.
    std::uint64_t seed = 0xD3F3A5Eull;
};

/// Applies a power-obfuscation counter-measure to the wrapped oracle's
/// power channel. Labels and raw outputs pass through unchanged. Batched
/// power queries are serialised through the transform so the obfuscation
/// stream is identical to per-vector measurement.
class ObfuscatedOracle : public OracleDecorator {
public:
    ObfuscatedOracle(Oracle& inner, ObfuscationConfig config);

    double query_power(const tensor::Vector& u) override;
    tensor::Vector query_power_batch(const tensor::Matrix& U) override;

    const ObfuscationConfig& config() const { return config_; }

private:
    ObfuscationConfig config_;
    sidechannel::TotalCurrentFn obfuscated_;
    std::mutex mutex_;  ///< the dither transform draws from a stateful Rng
};

/// Additive Gaussian measurement noise on the power channel (σ in weight
/// units, deterministic stream). Unlike ObfuscationConfig::Kind::Dither
/// the noise is absolute, not built from the obfuscation wrappers — this
/// is the plain sensing-noise model used by the noisy-scenario entries.
class NoisyPowerOracle : public OracleDecorator {
public:
    NoisyPowerOracle(Oracle& inner, double sigma, std::uint64_t seed = 0x5EED0FF5Eull);

    double query_power(const tensor::Vector& u) override;
    tensor::Vector query_power_batch(const tensor::Matrix& U) override;

private:
    double sigma_;
    Rng rng_;
    std::mutex mutex_;  ///< the noise stream is stateful; serialise draws
};

// ---- query budgets ----------------------------------------------------------

/// Attacker-cost cap. 0 means unlimited for that bucket.
struct QueryBudget {
    std::uint64_t max_inference = 0;
    std::uint64_t max_power = 0;
    std::uint64_t max_total = 0;

    bool unlimited() const { return max_inference == 0 && max_power == 0 && max_total == 0; }
};

/// Thrown by QueryBudgetOracle when a query would exceed the budget.
class QueryBudgetExceeded : public Error {
public:
    explicit QueryBudgetExceeded(const std::string& what)
        : Error("query budget exceeded: " + what) {}
};

/// Per-client budget *policy state*, split from the serving stack so one
/// shared backend can enforce a different ledger per tenant
/// (OracleService sessions) while the whole-deployment QueryBudgetOracle
/// remains the single-client special case. Thread-safe: concurrent
/// callers (thread-pool workers, service submitters) charge atomically
/// under one mutex, and charging is all-or-nothing — a batch that would
/// cross the cap throws before any of it is charged.
class BudgetLedger {
public:
    explicit BudgetLedger(QueryBudget budget) : budget_(budget) {}

    /// Charges n inference / power queries; throws QueryBudgetExceeded
    /// (charging nothing) when the charge would cross a cap.
    void charge_inference(std::uint64_t n);
    void charge_power(std::uint64_t n);

    /// Returns previously-charged queries to the budget — admission
    /// rollback for a submission that was charged but could not be
    /// enqueued (e.g. the service shut down between the charge and the
    /// queue push).
    void refund_inference(std::uint64_t n);
    void refund_power(std::uint64_t n);

    /// Queries charged so far (this ledger's own view of the client).
    QueryCounters spent() const;

    /// Forgets everything charged; the budget caps stay in force.
    void reset();

    const QueryBudget& budget() const { return budget_; }

private:
    QueryBudget budget_;
    mutable std::mutex mutex_;
    std::uint64_t spent_inference_ = 0;
    std::uint64_t spent_power_ = 0;
};

/// Enforces a hard query budget on everything passing through. Charging
/// is all-or-nothing: a batch that would cross the cap throws before any
/// of it reaches the backend, and a refused query is not charged.
/// Policy state lives in a BudgetLedger — this decorator is the
/// whole-deployment (single-session) composition of that policy.
class QueryBudgetOracle : public OracleDecorator {
public:
    QueryBudgetOracle(Oracle& inner, QueryBudget budget);

    int query_label(const tensor::Vector& u) override;
    tensor::Vector query_raw(const tensor::Vector& u) override;
    double query_power(const tensor::Vector& u) override;
    std::vector<int> query_labels(const tensor::Matrix& U) override;
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override;
    tensor::Vector query_power_batch(const tensor::Matrix& U) override;

    const QueryBudget& budget() const { return ledger_.budget(); }

    /// Queries charged against the budget so far (this decorator's own
    /// ledger — backend counters may include queries made before the
    /// budget was imposed).
    QueryCounters spent() const { return ledger_.spent(); }

private:
    BudgetLedger ledger_;
};

// ---- token-bucket rate limiting ---------------------------------------------

/// Sustained-rate admission cap: `refill_per_sec` tokens accrue per
/// second up to `burst` tokens of headroom, and every admitted query row
/// spends one token. Unlike QueryBudget (a lifetime total) this caps
/// queries *per second* — the per-tenant rate limiting the multi-tenant
/// service left open.
struct RateLimit {
    /// Tokens (query rows) accrued per second; <= 0 disables the limit.
    double refill_per_sec = 0.0;

    /// Bucket capacity — the largest instantaneous burst an idle client
    /// may spend at once. <= 0 defaults to one second's refill (at least
    /// one token), so a plain `{.refill_per_sec = 100}` is well-formed.
    double burst = 0.0;

    bool unlimited() const { return refill_per_sec <= 0.0; }
};

/// Thrown by TokenBucket when an acquisition would overdraw the bucket.
class RateLimited : public Error {
public:
    explicit RateLimited(const std::string& what) : Error("rate limited: " + what) {}
};

/// Monotonic-clock token bucket enforcing a RateLimit. Acquisition is
/// all-or-nothing (like BudgetLedger charging): a request the bucket
/// cannot cover throws RateLimited and takes nothing. The bucket starts
/// full, so a fresh client gets its burst allowance immediately.
///
/// Time comes from an injectable ClockFn — a pure monotonic nanosecond
/// source — defaulting to std::chrono::steady_clock. Tests install a
/// manually-advanced clock, making admission decisions (and therefore
/// the coalesced == serial bit-identity contract under rate limiting)
/// fully deterministic. Thread-safe under one mutex.
class TokenBucket {
public:
    /// Monotonic time source: nanoseconds since an arbitrary fixed epoch.
    using ClockFn = std::chrono::nanoseconds (*)();

    /// `clock` = nullptr uses the steady system clock.
    explicit TokenBucket(RateLimit limit, ClockFn clock = nullptr);

    /// Spends n tokens, or throws RateLimited spending nothing.
    void acquire(std::uint64_t n);

    /// Non-throwing acquire: true iff the n tokens were taken.
    bool try_acquire(std::uint64_t n);

    /// Returns previously-acquired tokens — admission rollback for a
    /// submission that was rate-admitted but then refused downstream
    /// (budget, shutdown). Never fills past the burst capacity.
    void refund(std::uint64_t n);

    /// Tokens available at this instant (refilled snapshot; racy under
    /// concurrent acquirers, exact under a test clock).
    double available() const;

    const RateLimit& limit() const { return limit_; }
    double capacity() const { return capacity_; }

private:
    /// Current token count after crediting the refill since `last_`.
    double refilled(std::chrono::nanoseconds now) const;

    RateLimit limit_;
    double capacity_ = 0.0;
    ClockFn clock_;
    mutable std::mutex mutex_;
    double tokens_ = 0.0;
    std::chrono::nanoseconds last_{0};
};

// ---- suspicion-scaled defenses ----------------------------------------------

/// Suspicion-scaled defense policy: the session's own DetectorScreen
/// flagged-fraction ("suspicion") selects a band that scales the
/// session's sensing-noise sigma and can withhold raw outputs — a
/// defender that reacts to how adversarial a tenant's traffic looks
/// instead of applying one static policy to everyone.
///
/// Bands are evaluated on the submitting thread at admission, so for a
/// serial submitter the escalation sequence is deterministic and
/// independent of how its submissions coalesce. Empty bands = policy
/// off, which keeps the default admission path bit-identical to the
/// static service.
struct AdaptivePolicy {
    struct Band {
        /// The band applies while suspicion >= this threshold.
        double min_suspicion = 0.0;

        /// Multiplies SessionConfig::power_noise_sigma while the band is
        /// active (escalation bands typically use > 1).
        double sigma_multiplier = 1.0;

        /// Raw-output cutoff: when false, raw submissions are refused
        /// (AccessDenied) while the band is active; the client can still
        /// query labels.
        bool expose_raw_outputs = true;

        /// Quarantine: while the band is active, *every* submission is
        /// refused (QueryRefused) — the harshest rung, meant for the top
        /// band of an attribution-pooled policy where "suspicion" is a
        /// whole campaign's window, not one session's. Label-degraded
        /// answers still leak a model through distillation; an attributed
        /// campaign gets nothing.
        bool refuse_queries = false;
    };

    /// Sorted ascending by min_suspicion; the *last* band whose
    /// threshold the suspicion meets applies. Empty = off.
    std::vector<Band> bands;

    /// Warm-up: no band applies before this many screened queries (tiny
    /// windows make flagged_fraction jumpy — one flagged query out of
    /// two must not escalate a tenant).
    std::uint64_t min_screened = 32;

    bool enabled() const { return !bands.empty(); }

    /// The active band for a (suspicion, screened-count) pair, or
    /// nullptr when off, warming up, or below every threshold.
    const Band* band_for(double suspicion, std::uint64_t screened) const;

    /// Two-band convenience: neutral below `threshold`, then sigma ×
    /// `sigma_multiplier` with raw outputs optionally withheld.
    static AdaptivePolicy escalate_at(double threshold, double sigma_multiplier,
                                      bool withhold_raw = true);
};

// ---- inline detection -------------------------------------------------------

/// Thrown by DetectorOracle when a flagged query is refused.
class QueryRefused : public Error {
public:
    explicit QueryRefused(const std::string& what) : Error("query refused: " + what) {}
};

/// Per-client detection *policy state* over a shared (immutable, already
/// enrolled) CurrentSignatureDetector: the screened/flagged window and
/// the blocking decision belong to one client, the enrolled profiles to
/// the deployment. OracleService sessions each own one of these, so one
/// tenant's anomalous traffic never pollutes another tenant's detection
/// statistics; DetectorOracle composes the same policy as the
/// whole-deployment special case. Thread-safe (atomic counters; the
/// shared detector is only read).
class DetectorScreen {
public:
    DetectorScreen(const sidechannel::CurrentSignatureDetector& detector, bool block_flagged)
        : detector_(&detector), block_flagged_(block_flagged) {}

    /// Scores the input; counts it (and, when blocking, throws
    /// QueryRefused) if the detector flags it. Returns whether this row
    /// was flagged (the attribution layer records per-row verdicts);
    /// the batch form returns how many of the rows were flagged.
    bool screen(const tensor::Vector& u);
    std::size_t screen_batch(const tensor::Matrix& U);

    std::uint64_t screened() const { return screened_.load(std::memory_order_relaxed); }
    std::uint64_t flagged() const { return flagged_.load(std::memory_order_relaxed); }
    double flagged_fraction() const;

    /// Clears the screening window (counters); enrolment is untouched.
    void reset();

    bool blocking() const { return block_flagged_; }
    const sidechannel::CurrentSignatureDetector& detector() const { return *detector_; }

private:
    const sidechannel::CurrentSignatureDetector* detector_;
    bool block_flagged_;
    std::atomic<std::uint64_t> screened_{0};
    std::atomic<std::uint64_t> flagged_{0};
};

/// Screens every inference input through a current-signature detector
/// before forwarding it. In log-only mode flagged queries are counted and
/// still answered (measurement of detector coverage); in blocking mode
/// they throw QueryRefused without reaching the backend. Power probes are
/// not screened — the detector models DetectX-style inference-time
/// sensing, and basis-vector probes are not inferences. Policy state
/// lives in a DetectorScreen — this decorator is the whole-deployment
/// (single-session) composition of that policy.
class DetectorOracle : public OracleDecorator {
public:
    DetectorOracle(Oracle& inner, const sidechannel::CurrentSignatureDetector& detector,
                   bool block_flagged = false);

    int query_label(const tensor::Vector& u) override;
    tensor::Vector query_raw(const tensor::Vector& u) override;
    std::vector<int> query_labels(const tensor::Matrix& U) override;
    tensor::Matrix query_raw_batch(const tensor::Matrix& U) override;

    std::uint64_t screened() const { return screen_.screened(); }
    std::uint64_t flagged() const { return screen_.flagged(); }
    double flagged_fraction() const { return screen_.flagged_fraction(); }

private:
    DetectorScreen screen_;
};

// ---- owned stacks -----------------------------------------------------------

/// An owned decorator chain over a (non-owned) backend. push<D>(args...)
/// constructs D(top(), args...) and makes it the new top; top() is the
/// attacker-facing oracle. Layer addresses are stable (heap-allocated),
/// so the chain survives moves of the stack object.
class DecoratorStack {
public:
    explicit DecoratorStack(Oracle& base) : base_(&base) {}

    template <typename D, typename... Args>
    D& push(Args&&... args) {
        auto layer = std::make_unique<D>(top(), std::forward<Args>(args)...);
        D& ref = *layer;
        layers_.push_back(std::move(layer));
        return ref;
    }

    Oracle& top() { return layers_.empty() ? *base_ : *layers_.back(); }
    std::size_t depth() const { return layers_.size(); }

private:
    Oracle* base_;
    std::vector<std::unique_ptr<Oracle>> layers_;
};

}  // namespace xbarsec::core
