// Named experiment scenarios and the unified runner.
//
// A ScenarioSpec is pure data: dataset × victim × device non-idealities ×
// oracle decorator stack × experiment. The ScenarioRegistry maps names to
// specs (the built-in entries cover every figure/table of the paper plus
// defended and noisy-device variants), and ScenarioRunner turns any spec
// into a ScenarioOutcome — so a new workload is a registry entry, not a
// new translation unit. The fig3/fig4/fig5/table1 benches and the generic
// bench_scenarios driver all run through this path.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "xbarsec/attack/adaptive.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/core/decorators.hpp"
#include "xbarsec/core/fig3.hpp"
#include "xbarsec/core/fig4.hpp"
#include "xbarsec/core/fig5.hpp"
#include "xbarsec/core/service.hpp"
#include "xbarsec/core/table1.hpp"
#include "xbarsec/data/loaders.hpp"

namespace xbarsec::core {

enum class DatasetKind { MnistLike, Cifar10Like };
enum class ExperimentKind {
    Fig3,
    Fig4,
    Fig5,
    Table1,
    Probe,
    MultiClient,
    ReplicaSweep,
    CacheTiming,
    ArmsRace,
};

std::string to_string(DatasetKind kind);
std::string to_string(ExperimentKind kind);

/// One defensive decorator layer, described as data. Layers are applied
/// in order: the first entry wraps the backend, the last is the
/// attacker-facing top of the stack.
struct DefenseSpec {
    enum class Kind {
        DitherPower,   ///< ObfuscatedOracle, Gaussian supply-rail dither
        UniformDummy,  ///< ObfuscatedOracle, identical per-line dummies
        RandomDummy,   ///< ObfuscatedOracle, randomised per-line dummies
        NoisyPower,    ///< NoisyPowerOracle (sensing-noise model)
        QueryBudget,   ///< QueryBudgetOracle
        Detector,      ///< DetectorOracle (current-signature screening)
    };

    Kind kind = Kind::NoisyPower;

    /// Noise σ / dummy conductance. Interpreted in weight units; when
    /// `relative` it is multiplied by max_j ‖W[:,j]‖₁ of the deployed
    /// weights (the natural scale of the leaked signal).
    double magnitude = 0.0;
    bool relative = true;
    std::uint64_t seed = 101;

    QueryBudget budget{};  ///< Kind::QueryBudget only

    // Kind::Detector only.
    sidechannel::DetectorConfig detector{};
    bool block_flagged = false;
    std::size_t detector_enrollment = 256;  ///< clean train samples enrolled
};

/// A multi-tenant serving workload: several clients drive one deployment
/// through concurrent OracleService sessions, each under its own policy.
struct MultiClientOptions {
    enum class Mode {
        HiddenAttacker,    ///< one attacker probing + attacking among benign tenants
        BudgetExhaustion,  ///< per-tenant budgets: the attacker exhausts its own, others run on
        DetectorIsolation, ///< per-session detection windows must not bleed between tenants
    };

    Mode mode = Mode::HiddenAttacker;

    std::size_t benign_clients = 4;    ///< concurrent benign sessions
    std::size_t benign_queries = 256;  ///< clean label queries per benign client

    /// Single-pixel attack strength for the attacker's inference queries
    /// (relative to the clean input maximum, as in Fig. 4's sweeps).
    double attack_strength = 10.0;
    std::size_t attack_queries = 64;  ///< adversarial queries the attacker issues

    /// Per-tenant budget for Mode::BudgetExhaustion (applied to every
    /// session; sized so the attacker's probe exhausts it but benign
    /// traffic fits).
    QueryBudget tenant_budget{};

    /// Detector config for the per-session screens (HiddenAttacker and
    /// DetectorIsolation enrol one shared detector, screened per session).
    sidechannel::DetectorConfig detector{};
    std::size_t detector_enrollment = 256;

    std::uint64_t seed = 7;
};

std::string to_string(MultiClientOptions::Mode mode);

/// A replica-fleet extraction sweep: the attacker runs a surrogate
/// extraction against a fleet of N physically distinct replicas of the
/// same victim (per-replica device variation via
/// xbar::replica_variation_seed) and we measure how fidelity depends on
/// how many device signatures its query stream mixes — one point per
/// replica count (Axis::ReplicaCount) or per routing policy
/// (Axis::Routing). Queries are submitted per-row and pipelined, so
/// routing actually spreads them over the fleet (a single batched
/// submission is one unit and would land on one replica).
struct ReplicaSweepOptions {
    enum class Axis {
        ReplicaCount,  ///< sweep replica_counts at the spec's routing policy
        Routing,       ///< sweep routings at routing_replicas replicas
    };

    Axis axis = Axis::ReplicaCount;

    std::vector<std::size_t> replica_counts = {1, 2, 4};
    std::vector<RoutingPolicy> routings = {RoutingPolicy::SessionAffine,
                                           RoutingPolicy::RoundRobin,
                                           RoutingPolicy::LeastLoaded};
    std::size_t routing_replicas = 4;  ///< fleet size for Axis::Routing

    std::size_t queries = 1000;     ///< attacker query budget per point
    double lambda_ridge = 0.005;    ///< least-squares surrogate ridge
    std::size_t eval_limit = 500;   ///< test rows for the fidelity estimate
    std::uint64_t seed = 7;
};

std::string to_string(ReplicaSweepOptions::Axis axis);

/// The cross-tenant cache-timing side channel: a victim session queries
/// a secret subset of a public candidate pool through a shared result
/// cache; an attacker session then times its own probes of every
/// candidate and ranks them by latency (a resident entry answers on the
/// submitting thread, a miss pays the queue roundtrip + backend batch).
/// Reported as the Mann-Whitney AUC of that ranking against the true
/// membership — ≈1.0 on a shared cache, ≈0.5 once
/// CacheConfig::partition_by_session keys the victim's entries away from
/// the attacker's probes. Both modes run from one trained victim.
struct CacheTimingOptions {
    std::size_t candidate_pool = 64;    ///< public candidate inputs (victim queries half)
    std::size_t cache_capacity = 4096;  ///< sized so victim entries stay resident
    std::size_t probe_repeats = 4;      ///< attacker timing passes per candidate
    std::uint64_t seed = 7;
};

/// One defense policy in the arms race: what every session of the cell's
/// deployment is opened with (the deployment cannot single the attacker
/// out, so benign tenants pay the same policy).
struct ArmsDefense {
    std::string name;      ///< cell label, e.g. "rate+adaptive"
    RateLimit rate{};      ///< per-session token bucket (default off)
    bool suspicion_scaled = false;  ///< enrol the detector + AdaptivePolicy

    /// Cross-session attribution cell: enable the AttributionEngine on
    /// the deployment. Sessions are admitted under per-source
    /// identities (benign tenant i → source 1000+i, the attacker →
    /// source 1 unless it forges); suspicion bands read campaign-pooled
    /// windows, so session rotation stops resetting them.
    bool attribution = false;

    /// Per-*source* token bucket for attribution cells (replaces the
    /// tight per-session bucket: the allowance follows the principal
    /// across rotations, so it can afford a generous burst that a
    /// benign tenant's whole workload fits inside).
    RateLimit source_rate{};

    /// Quarantine rung for attribution cells: when > 0, a top
    /// AdaptivePolicy band with `refuse_queries` is appended at this
    /// campaign-pooled suspicion. Once a campaign's pooled windows cross
    /// it, every submission of every session attributed to the campaign
    /// is refused — including in-distribution camouflage, which is what
    /// per-query escalation cannot touch (camouflage rows are clean, and
    /// one-hot labels on clean inputs still distill the victim). 0 = off.
    double quarantine_suspicion = 0.0;

    /// Override for EngineConfig::alert_min_screened in attribution
    /// cells (0 keeps the engine default). The arms-race campaign is
    /// short relative to a real deployment, so the cell trips the
    /// deployment alert on less evidence.
    std::size_t alert_min_screened = 0;

    /// Override for EngineConfig::churn_fresh_sources (0 keeps the
    /// engine default). Lowered for the short arms-race campaign the
    /// same way as alert_min_screened: the cell only ever onboards a
    /// couple of benign principals, so a small threshold still has a
    /// wide benign margin.
    std::size_t churn_fresh_sources = 0;
};

/// The arms race: every attacker strategy against every defense policy,
/// on one trained victim. Each cell deploys a fresh single-replica
/// service, opens benign tenants and an AdaptiveAttacker under the same
/// per-session policy, and records extraction fidelity vs. what the
/// defense cost the benign tenants (refusals and throughput).
struct ArmsRaceOptions {
    std::vector<attack::AttackerStrategy> strategies = {
        attack::AttackerStrategy::Fixed, attack::AttackerStrategy::Throttle,
        attack::AttackerStrategy::Rotate, attack::AttackerStrategy::Spread};

    std::vector<ArmsDefense> defenses = {
        {"open", RateLimit{}, false},
        {"rate", RateLimit{400.0, 48.0}, false},
        {"rate+adaptive", RateLimit{400.0, 48.0}, true},
    };

    /// Campaign parameters shared by every cell; `strategy` is
    /// overwritten per cell, `seed` is offset per cell.
    attack::AdaptiveAttackerConfig attacker;

    /// Benign tenants streaming concurrently with the attacker in every
    /// cell — their refused/answered counts are the defender's cost.
    std::size_t benign_clients = 2;
    std::size_t benign_queries = 192;

    /// Clean samples the attacker is assumed to possess for Spread's
    /// camouflage. Kept small on purpose: an attacker with the victim's
    /// data distribution would not need to extract the model, and a
    /// small pool bounds how much extraction value camouflage queries
    /// can add (repeats of the same few inputs span a tiny subspace).
    std::size_t camouflage_pool = 64;

    double lambda_ridge = 0.005;  ///< least-squares surrogate ridge
    std::size_t eval_limit = 400;

    /// Probe amplitude: probe inputs are uniform per-pixel in
    /// [0, probe_strength]. Clean pixels live in [0, 1]; the attacker
    /// drives its probes harder for power-channel SNR and least-squares
    /// leverage, which pushes their per-line currents past the
    /// detector's auto-calibrated clean envelope (≈2-3× the clean
    /// range) — high-value queries are exactly the detectable ones.
    double probe_strength = 6.0;

    /// Suspicion-scaled cells: shared detector enrolment and the policy
    /// every session runs under. The base per-session sensing-noise
    /// sigma is `power_noise_rel` × max_j ‖W[:,j]‖₁ of the deployed
    /// weights; escalated bands multiply it.
    sidechannel::DetectorConfig detector{};
    std::size_t detector_enrollment = 256;
    AdaptivePolicy adaptive = AdaptivePolicy::escalate_at(0.2, 4.0);
    double power_noise_rel = 0.02;

    std::uint64_t seed = 7;
};

/// A complete named workload.
struct ScenarioSpec {
    std::string name;         ///< registry key, e.g. "fig4/mnist/softmax"
    std::string description;  ///< one-line summary for listings

    DatasetKind dataset = DatasetKind::MnistLike;
    data::LoadOptions load;
    OutputConfig output = OutputConfig::softmax_ce();
    VictimConfig victim = VictimConfig::defaults(OutputConfig::softmax_ce());
    std::vector<DefenseSpec> defenses;

    /// Backend fleet size: the victim is deployed onto this many
    /// physically distinct crossbars (same weights, per-replica
    /// variation seeds) with one decorator stack each, all fronted by
    /// one OracleService. 1 = the classic single deployment.
    std::size_t replicas = 1;

    /// How the service routes submissions over the fleet. The default
    /// keeps every single-session experiment on one replica —
    /// bit-identical to a single-backend deployment.
    RoutingPolicy routing = RoutingPolicy::SessionAffine;

    /// Result-cache tier of the deployment's service (default off —
    /// bit-identical to the uncached fleet).
    CacheConfig cache;

    ExperimentKind experiment = ExperimentKind::Fig4;
    Fig4Options fig4;
    Fig5Options fig5;
    Table1Options table1;
    sidechannel::ProbeOptions probe;
    std::size_t probe_topk = 16;  ///< ranking-agreement k for Probe reports
    MultiClientOptions multiclient;
    ReplicaSweepOptions replica_sweep;
    CacheTimingOptions cache_timing;
    ArmsRaceOptions arms_race;
};

/// Shrinks a spec to CI-smoke size (tiny datasets, minimal sweeps).
void apply_smoke(ScenarioSpec& spec);

/// Name → spec map with ordered listing. Lookup of an unknown name
/// throws ConfigError naming the nearest available entries.
class ScenarioRegistry {
public:
    /// Registers a spec; throws ConfigError on empty or duplicate names.
    void add(ScenarioSpec spec);

    bool contains(const std::string& name) const;
    const ScenarioSpec& get(const std::string& name) const;

    /// Registered names (sorted); optionally filtered to a prefix.
    std::vector<std::string> names(const std::string& prefix = "") const;
    std::size_t size() const { return specs_.size(); }

private:
    std::map<std::string, ScenarioSpec> specs_;
};

/// The global registry, pre-populated with the built-in scenarios on
/// first use.
ScenarioRegistry& builtin_scenarios();

/// A trained victim deployed on the crossbar with its decorator stack
/// built and fronted by an OracleService — ready for an attacker. Owns
/// everything it references. Every experiment drives the deployment
/// through a service session: the single-session case is the exact
/// pre-service behaviour (the coalescer passes sync submissions through
/// to the stack top, bit for bit), and multi-client experiments open
/// further sessions on the same service.
class DeployedScenario {
public:
    const ScenarioSpec& spec() const { return spec_; }
    const data::DataSplit& split() const { return split_; }
    const TrainedVictim& victim() const { return victim_; }

    /// The physical deployment (evaluation-side access; replica 0 of a
    /// fleet — its variation seed is the spec's own, so it is exactly the
    /// device a single-replica deployment would have).
    CrossbarOracle& backend() { return backends_.front(); }

    /// Replica access for fleet deployments (spec.replicas > 1).
    std::size_t replica_count() const { return backends_.size(); }
    CrossbarOracle& replica_backend(std::size_t replica) { return backends_[replica]; }

    /// The attacker-facing top of replica 0's decorator stack (what the
    /// service's sessions serve; direct use bypasses the service).
    Oracle& stack_top() { return stacks_.front()->top(); }

    /// Replica k's stack top.
    Oracle& replica_stack_top(std::size_t replica) { return stacks_[replica]->top(); }

    /// The serving front-end over the stack (open more sessions here).
    OracleService& service() { return *service_; }

    /// The attacker-facing oracle: the default session's synchronous
    /// view onto the service. Existing attack code runs unchanged.
    Oracle& oracle() { return session_.oracle(); }

    /// The default session every single-client experiment runs through.
    Session& session() { return session_; }

    /// The enrolled detector (non-null when the spec asked for one or a
    /// multi-client experiment enrolled one); shared, read-only.
    const sidechannel::CurrentSignatureDetector* enrolled_detector() const {
        return detector_.get();
    }

    /// Non-null when the stack contains a Detector layer.
    const DetectorOracle* detector_layer() const { return detector_layer_; }

private:
    friend class ScenarioRunner;
    DeployedScenario() = default;

    ScenarioSpec spec_;
    data::DataSplit split_;
    TrainedVictim victim_;
    // One backend + stack per replica (index 0 = the spec's own seeds).
    // The vectors' heap storage keeps the oracles at stable addresses
    // when the DeployedScenario itself is moved.
    std::vector<CrossbarOracle> backends_;
    std::unique_ptr<sidechannel::CurrentSignatureDetector> detector_;
    std::vector<std::unique_ptr<DecoratorStack>> stacks_;
    DetectorOracle* detector_layer_ = nullptr;  ///< replica 0's detector layer
    // Declared after the stacks (and destroyed before them): the session
    // must close before the service joins its flushers, which must happen
    // before the backends they serve go away.
    std::unique_ptr<OracleService> service_;
    Session session_;
};

/// Everything a scenario produced, in renderable form.
struct ScenarioOutcome {
    std::string name;
    std::string label;  ///< dataset/activation label of the experiment

    std::vector<std::pair<std::string, Table>> tables;
    std::vector<std::pair<std::string, std::string>> notes;  ///< e.g. ASCII heat maps
    std::map<std::string, double> metrics;

    /// Per-pixel maps worth re-plotting (Figure 3 panels).
    struct Grid {
        std::string name;
        tensor::Vector map;
        data::ImageShape shape;
    };
    std::vector<Grid> grids;

    /// Backend query counters after the experiment (single-deployment
    /// experiments; zero for the multi-deployment Fig5/Table1 sweeps).
    QueryCounters attacker_cost;
};

/// Runs any ScenarioSpec end to end.
class ScenarioRunner {
public:
    /// `pool` parallelises batched oracle queries and fig5 runs.
    explicit ScenarioRunner(ThreadPool* pool = nullptr) : pool_(pool) {}

    /// Loads data, trains the victim, deploys it, and builds the
    /// decorator stack (experiments that manage their own training —
    /// Fig5, Table1 — do not use this).
    DeployedScenario deploy(const ScenarioSpec& spec) const;

    ScenarioOutcome run(const ScenarioSpec& spec) const;

    /// Convenience: builtin_scenarios() lookup + run.
    ScenarioOutcome run(const std::string& name) const;

private:
    ThreadPool* pool_ = nullptr;
};

}  // namespace xbarsec::core
