// Figure 4: single-pixel attacks guided by power information.
//
// Test accuracy of the deployed network as a function of attack strength
// (0..10) for the five methods RP / + / − / RD / Worst, per dataset and
// output configuration. The power-guided methods use the 1-norm ranking
// probed from the deployed crossbar.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xbarsec/attack/single_pixel.hpp"
#include "xbarsec/common/table.hpp"
#include "xbarsec/core/oracle.hpp"
#include "xbarsec/core/victim.hpp"

namespace xbarsec::core {

struct Fig4Options {
    std::vector<double> strengths = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    std::uint64_t seed = 33;
    /// Evaluate on at most this many test samples (0 = all).
    std::size_t eval_limit = 0;
    /// Score attacks by querying the attacker-facing oracle (counted, and
    /// subject to any decorator stack — detector screening, budgets)
    /// instead of the experimenter's direct hardware evaluation.
    bool evaluate_via_oracle = false;
};

/// Accuracy series for one attack method.
struct Fig4Series {
    attack::SinglePixelMethod method;
    std::vector<double> accuracy;  ///< aligned with Fig4Options::strengths
};

struct Fig4Result {
    std::string label;
    std::vector<double> strengths;
    std::vector<Fig4Series> series;
    double clean_accuracy = 0.0;  ///< accuracy at strength 0 (sanity anchor)
};

/// Runs the full method × strength sweep for one configuration (trains
/// and deploys a fresh victim, then delegates to run_fig4_on).
Fig4Result run_fig4_config(const data::DataSplit& split, const std::string& dataset_name,
                           const OutputConfig& output, const VictimConfig& base_config,
                           const Fig4Options& options);

/// Runs the sweep against an already-deployed victim. `attacker` is the
/// attacker-facing oracle — probed for the 1-norm ranking, and also used
/// to score attacks when options.evaluate_via_oracle; `hardware` supplies
/// white-box gradients (WorstCase reference) and the direct evaluation
/// path. Pass the top of a decorator stack as `attacker` to measure a
/// defended deployment.
Fig4Result run_fig4_on(Oracle& attacker, const xbar::CrossbarNetwork& hardware,
                       const data::Dataset& eval_set, const std::string& label,
                       const Fig4Options& options);

/// Markdown rendering: one row per strength, one column per method.
Table render_fig4(const Fig4Result& result);

}  // namespace xbarsec::core
