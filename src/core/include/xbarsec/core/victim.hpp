// Victim construction: train the paper's single-layer oracle networks and
// deploy them on the simulated crossbar.
#pragma once

#include <cstdint>
#include <string>

#include "xbarsec/core/oracle.hpp"
#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/network.hpp"
#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/xbar/xbar_network.hpp"

namespace xbarsec::core {

/// One of the paper's two output configurations.
struct OutputConfig {
    nn::Activation activation = nn::Activation::Softmax;
    nn::Loss loss = nn::Loss::CategoricalCrossentropy;

    static OutputConfig linear_mse() { return {nn::Activation::Linear, nn::Loss::Mse}; }
    static OutputConfig softmax_ce() {
        return {nn::Activation::Softmax, nn::Loss::CategoricalCrossentropy};
    }

    std::string name() const { return to_string(activation); }
};

/// Everything needed to train and deploy one victim.
struct VictimConfig {
    OutputConfig output;
    nn::TrainConfig train;
    xbar::DeviceSpec device;
    xbar::NonIdealityConfig nonideal;
    OracleOptions oracle;
    std::uint64_t init_seed = 11;

    /// When true, train_victim() replaces train.learning_rate with
    /// lr_numerator / E[‖u‖²] (estimated from the training inputs). The
    /// heavy-ball stability bound scales with 1/E[‖u‖²], so a fixed rate
    /// that converges on 784-dim MNIST diverges on 3072-dim CIFAR; this
    /// keeps both in the stable region.
    bool auto_lr = true;
    double lr_numerator = 5.0;

    /// Sensible defaults for the dataset scale of this repo (tuned so the
    /// synthetic MNIST victim lands near the paper's ~90% band).
    static VictimConfig defaults(OutputConfig output);
};

/// A trained victim and its headline metrics.
struct TrainedVictim {
    nn::SingleLayerNet net;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
};

/// Trains the software network on the split.
TrainedVictim train_victim(const data::DataSplit& split, const VictimConfig& config);

/// Deploys a trained network on the crossbar and wraps it in an oracle.
CrossbarOracle deploy_victim(const nn::SingleLayerNet& net, const VictimConfig& config);

/// Deploys the same trained network onto `replicas` physically distinct
/// crossbars: identical programmed weights, but each replica derives its
/// own fault-placement/read-noise seed and write-noise seed via
/// xbar::replica_variation_seed, so every device carries a different
/// physical signature. Replica 0 is bit-identical to deploy_victim(net,
/// config). Front the returned oracles with an OracleService fleet
/// constructor to serve them behind one routing policy.
std::vector<CrossbarOracle> deploy_victim_fleet(const nn::SingleLayerNet& net,
                                                const VictimConfig& config, std::size_t replicas);

}  // namespace xbarsec::core
