// Correlation coefficients.
//
// Table I of the paper reports Pearson correlation between the magnitude
// of the loss sensitivity |∂L/∂u_j| and the column 1-norms ‖W[:,j]‖₁ —
// both per-sample ("Mean Correlation") and between the test-set means
// ("Correlation of Mean"). pearson() is that metric; spearman() is
// provided for rank-based robustness checks in the ablations.
#pragma once

#include <span>

#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::stats {

/// Pearson product-moment correlation coefficient of two equal-length
/// samples. Returns 0 when either sample has zero variance (degenerate,
/// matching NumPy's nan-avoidance convention used in practice for flat
/// sensitivity maps). Requires size >= 2.
double pearson(std::span<const double> x, std::span<const double> y);

/// Vector convenience overload.
double pearson(const tensor::Vector& x, const tensor::Vector& y);

/// Spearman rank correlation (Pearson on fractional ranks; ties get
/// average ranks). Requires size >= 2.
double spearman(std::span<const double> x, std::span<const double> y);

/// Vector convenience overload.
double spearman(const tensor::Vector& x, const tensor::Vector& y);

}  // namespace xbarsec::stats
