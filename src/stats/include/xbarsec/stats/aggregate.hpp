// Aggregation of metrics over independent experiment runs.
//
// Every Figure-5 point is "mean ± std over runs, with a significance star
// against the λ=0 baseline". RunAggregator collects named series of
// per-run values and produces those summaries uniformly across benches.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "xbarsec/stats/descriptive.hpp"
#include "xbarsec/stats/ttest.hpp"

namespace xbarsec::stats {

/// Collects per-run scalar observations under string keys and summarizes.
class RunAggregator {
public:
    /// Appends one run's observation for `key`.
    void add(const std::string& key, double value);

    /// Number of observations recorded for `key` (0 if absent).
    std::size_t count(const std::string& key) const;

    /// All observations for `key`; throws ContractViolation if absent.
    std::span<const double> values(const std::string& key) const;

    /// Welford summary for `key`; requires at least one observation.
    Summary summary(const std::string& key) const;

    /// Welch t-test between the observations of two keys (both need >= 2).
    TTestResult compare(const std::string& key_a, const std::string& key_b) const;

    /// All keys in insertion order.
    const std::vector<std::string>& keys() const { return order_; }

    bool contains(const std::string& key) const { return series_.count(key) != 0; }

private:
    std::map<std::string, std::vector<double>> series_;
    std::vector<std::string> order_;
};

}  // namespace xbarsec::stats
