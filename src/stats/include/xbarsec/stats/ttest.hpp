// Two-sample and paired t-tests.
//
// Figure 5(c,f,i,l) marks with an asterisk every (Q, λ) point where the
// attack-efficacy difference between the power-aided and power-free
// surrogates is significant at p < 0.05 under a Student's t-test over the
// independent runs. welch_t_test() is the default (no equal-variance
// assumption); pooled_t_test() matches the classic equal-variance form.
#pragma once

#include <span>

namespace xbarsec::stats {

/// Result of a t-test.
struct TTestResult {
    double t = 0.0;        ///< test statistic
    double df = 0.0;       ///< degrees of freedom (fractional for Welch)
    double p_value = 1.0;  ///< two-tailed p-value
    double mean_a = 0.0;
    double mean_b = 0.0;

    /// Convenience significance check.
    bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Welch's unequal-variance two-sample t-test. Requires both samples to
/// have size >= 2. Degenerate case (both variances zero): t = 0, p = 1
/// when means are equal, otherwise t = ±inf, p = 0.
TTestResult welch_t_test(std::span<const double> a, std::span<const double> b);

/// Classic pooled-variance two-sample t-test (equal variances assumed).
TTestResult pooled_t_test(std::span<const double> a, std::span<const double> b);

/// Paired t-test over per-run differences. Requires equal sizes >= 2.
TTestResult paired_t_test(std::span<const double> a, std::span<const double> b);

}  // namespace xbarsec::stats
