// Special functions needed for p-values.
//
// The significance asterisks in Figure 5 come from a two-sample Student's
// t-test; converting a t statistic to a p-value needs the CDF of the t
// distribution, which reduces to the regularised incomplete beta function
// I_x(a, b). Implemented with the standard Lentz continued-fraction
// expansion (Numerical Recipes §6.4 formulation).
#pragma once

namespace xbarsec::stats {

/// Regularised incomplete beta function I_x(a, b), for a,b > 0 and
/// x ∈ [0, 1]. Accurate to ~1e-12 over the parameter ranges used here.
double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom (df > 0).
double student_t_cdf(double t, double df);

/// Two-tailed p-value for a t statistic with `df` degrees of freedom.
double student_t_two_tailed_p(double t, double df);

}  // namespace xbarsec::stats
