// Descriptive statistics over spans of doubles.
//
// Variances use Welford's online algorithm (numerically stable for the
// long accumulations in the benches). "Sample" variants divide by n-1.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace xbarsec::stats {

/// Aggregate moments of a sample, computed in one pass.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0;  ///< sample variance (n-1 denominator); 0 when count < 2
    double stddev = 0.0;    ///< sqrt(variance)
    double sem = 0.0;       ///< standard error of the mean; 0 when count < 2
    double min = 0.0;
    double max = 0.0;
};

/// One-pass Welford summary. Requires a non-empty sample.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; requires non-empty.
double mean(std::span<const double> xs);

/// Sample variance (n-1); requires size >= 2.
double sample_variance(std::span<const double> xs);

/// Sample standard deviation (n-1); requires size >= 2.
double sample_stddev(std::span<const double> xs);

/// Median (interpolated for even sizes); requires non-empty. Copies.
double median(std::span<const double> xs);

/// p-th quantile, p in [0,1], linear interpolation; requires non-empty.
double quantile(std::span<const double> xs, double p);

/// Incremental Welford accumulator for streaming use.
class RunningStats {
public:
    void push(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    /// Sample variance; 0 when count < 2.
    double variance() const;
    double stddev() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

}  // namespace xbarsec::stats
