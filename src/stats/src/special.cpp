#include "xbarsec/stats/special.hpp"

#include <cmath>
#include <limits>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::stats {

namespace {

// Continued-fraction evaluation for the incomplete beta function
// (modified Lentz's method). Converges quickly for x < (a+1)/(a+b+2).
double betacf(double a, double b, double x) {
    constexpr int kMaxIter = 300;
    constexpr double kEps = 3e-14;
    constexpr double kFpMin = 1e-300;

    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= kMaxIter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kFpMin) d = kFpMin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kFpMin) c = kFpMin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < kFpMin) d = kFpMin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < kFpMin) c = kFpMin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < kEps) return h;
    }
    // Did not fully converge; the partial sum is still accurate to ~1e-10
    // for all (a, b, x) reachable from the t-distribution CDF.
    return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
    XS_EXPECTS(a > 0.0 && b > 0.0);
    XS_EXPECTS(x >= 0.0 && x <= 1.0);
    if (x == 0.0) return 0.0;
    if (x == 1.0) return 1.0;
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) - std::lgamma(b) +
                            a * std::log(x) + b * std::log1p(-x);
    const double front = std::exp(ln_front);
    if (x < (a + 1.0) / (a + b + 2.0)) {
        return front * betacf(a, b, x) / a;
    }
    return 1.0 - front * betacf(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
    XS_EXPECTS(df > 0.0);
    if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
    // I_x(df/2, 1/2) with x = df / (df + t²) gives P(|T| > |t|).
    const double x = df / (df + t * t);
    const double tail = 0.5 * incomplete_beta(0.5 * df, 0.5, x);
    return t >= 0.0 ? 1.0 - tail : tail;
}

double student_t_two_tailed_p(double t, double df) {
    XS_EXPECTS(df > 0.0);
    if (std::isnan(t)) return std::numeric_limits<double>::quiet_NaN();
    const double x = df / (df + t * t);
    return incomplete_beta(0.5 * df, 0.5, x);
}

}  // namespace xbarsec::stats
