#include "xbarsec/stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::stats {

double pearson(std::span<const double> x, std::span<const double> y) {
    XS_EXPECTS(x.size() == y.size());
    XS_EXPECTS(x.size() >= 2);
    const auto n = static_cast<double>(x.size());
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        mx += x[i];
        my += y[i];
    }
    mx /= n;
    my /= n;
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mx;
        const double dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0) return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double pearson(const tensor::Vector& x, const tensor::Vector& y) {
    return pearson(x.span(), y.span());
}

namespace {
// Fractional ranks with average ranks for ties (1-based).
std::vector<double> fractional_ranks(std::span<const double> xs) {
    const std::size_t n = xs.size();
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
        // Average rank for the tie group [i, j].
        const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
        i = j + 1;
    }
    return ranks;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
    XS_EXPECTS(x.size() == y.size());
    XS_EXPECTS(x.size() >= 2);
    const auto rx = fractional_ranks(x);
    const auto ry = fractional_ranks(y);
    return pearson(std::span<const double>(rx), std::span<const double>(ry));
}

double spearman(const tensor::Vector& x, const tensor::Vector& y) {
    return spearman(x.span(), y.span());
}

}  // namespace xbarsec::stats
