#include "xbarsec/stats/aggregate.hpp"

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::stats {

void RunAggregator::add(const std::string& key, double value) {
    auto [it, inserted] = series_.try_emplace(key);
    if (inserted) order_.push_back(key);
    it->second.push_back(value);
}

std::size_t RunAggregator::count(const std::string& key) const {
    const auto it = series_.find(key);
    return it == series_.end() ? 0 : it->second.size();
}

std::span<const double> RunAggregator::values(const std::string& key) const {
    const auto it = series_.find(key);
    XS_EXPECTS_MSG(it != series_.end(), "unknown series key");
    return it->second;
}

Summary RunAggregator::summary(const std::string& key) const { return summarize(values(key)); }

TTestResult RunAggregator::compare(const std::string& key_a, const std::string& key_b) const {
    return welch_t_test(values(key_a), values(key_b));
}

}  // namespace xbarsec::stats
