#include "xbarsec/stats/ttest.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/stats/descriptive.hpp"
#include "xbarsec/stats/special.hpp"

namespace xbarsec::stats {

namespace {

TTestResult finish(double t, double df, double mean_a, double mean_b) {
    TTestResult r;
    r.t = t;
    r.df = df;
    r.mean_a = mean_a;
    r.mean_b = mean_b;
    if (std::isinf(t)) {
        r.p_value = 0.0;
    } else if (std::isnan(t)) {
        r.p_value = 1.0;
    } else {
        r.p_value = student_t_two_tailed_p(t, df);
    }
    return r;
}

// Handles the zero-variance degenerate case shared by both tests.
bool degenerate(double var_a, double var_b, double mean_a, double mean_b, double df,
                TTestResult& out) {
    if (var_a > 0.0 || var_b > 0.0) return false;
    const double t = mean_a == mean_b ? 0.0
                                      : std::copysign(std::numeric_limits<double>::infinity(),
                                                      mean_a - mean_b);
    out = finish(t, df > 0 ? df : 1.0, mean_a, mean_b);
    return true;
}

}  // namespace

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
    XS_EXPECTS(a.size() >= 2 && b.size() >= 2);
    const Summary sa = summarize(a);
    const Summary sb = summarize(b);
    const double na = static_cast<double>(sa.count), nb = static_cast<double>(sb.count);
    const double va = sa.variance / na, vb = sb.variance / nb;

    TTestResult r;
    if (degenerate(sa.variance, sb.variance, sa.mean, sb.mean, na + nb - 2.0, r)) return r;

    const double t = (sa.mean - sb.mean) / std::sqrt(va + vb);
    // Welch–Satterthwaite degrees of freedom.
    const double df = (va + vb) * (va + vb) /
                      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    return finish(t, df, sa.mean, sb.mean);
}

TTestResult pooled_t_test(std::span<const double> a, std::span<const double> b) {
    XS_EXPECTS(a.size() >= 2 && b.size() >= 2);
    const Summary sa = summarize(a);
    const Summary sb = summarize(b);
    const double na = static_cast<double>(sa.count), nb = static_cast<double>(sb.count);
    const double df = na + nb - 2.0;

    TTestResult r;
    if (degenerate(sa.variance, sb.variance, sa.mean, sb.mean, df, r)) return r;

    const double sp2 = ((na - 1.0) * sa.variance + (nb - 1.0) * sb.variance) / df;
    const double t = (sa.mean - sb.mean) / std::sqrt(sp2 * (1.0 / na + 1.0 / nb));
    return finish(t, df, sa.mean, sb.mean);
}

TTestResult paired_t_test(std::span<const double> a, std::span<const double> b) {
    XS_EXPECTS(a.size() == b.size());
    XS_EXPECTS(a.size() >= 2);
    std::vector<double> diff(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
    const Summary sd = summarize(diff);
    const double n = static_cast<double>(sd.count);
    const double df = n - 1.0;

    TTestResult r;
    if (degenerate(sd.variance, 0.0, sd.mean, 0.0, df, r)) {
        r.mean_a = summarize(a).mean;
        r.mean_b = summarize(b).mean;
        return r;
    }
    const double t = sd.mean / (sd.stddev / std::sqrt(n));
    r = finish(t, df, summarize(a).mean, summarize(b).mean);
    return r;
}

}  // namespace xbarsec::stats
