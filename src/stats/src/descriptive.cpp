#include "xbarsec/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::stats {

Summary summarize(std::span<const double> xs) {
    XS_EXPECTS(!xs.empty());
    Summary s;
    s.min = xs[0];
    s.max = xs[0];
    double mean = 0.0, m2 = 0.0;
    std::size_t n = 0;
    for (double x : xs) {
        ++n;
        const double delta = x - mean;
        mean += delta / static_cast<double>(n);
        m2 += delta * (x - mean);
        s.min = std::min(s.min, x);
        s.max = std::max(s.max, x);
    }
    s.count = n;
    s.mean = mean;
    s.variance = n >= 2 ? m2 / static_cast<double>(n - 1) : 0.0;
    s.stddev = std::sqrt(s.variance);
    s.sem = n >= 2 ? s.stddev / std::sqrt(static_cast<double>(n)) : 0.0;
    return s;
}

double mean(std::span<const double> xs) {
    XS_EXPECTS(!xs.empty());
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
    XS_EXPECTS(xs.size() >= 2);
    return summarize(xs).variance;
}

double sample_stddev(std::span<const double> xs) { return std::sqrt(sample_variance(xs)); }

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double quantile(std::span<const double> xs, double p) {
    XS_EXPECTS(!xs.empty());
    XS_EXPECTS(p >= 0.0 && p <= 1.0);
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted[0];
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStats::push(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace xbarsec::stats
