// Workspace: an arena of Matrix / Vector temporaries for training loops.
//
// The trainers gather every minibatch into dense buffers, run a handful of
// GEMMs, and discard the lot — thousands of times per fit. Allocating those
// buffers fresh each iteration costs an mmap/munmap round trip per gather
// at MNIST/CIFAR widths (the buffers are above glibc's mmap threshold).
// A Workspace is the Matrix-shaped tier of the arena layer (common/arena.hpp
// is the raw-bytes tier used by the GEMM pack buffers): acquire() hands out
// slots in order, reset() makes every slot reusable while keeping its heap
// capacity, so the minibatch-sized matrix and vector temporaries that
// dominate the trainers' allocation traffic are reused across iterations
// (a few small BLAS-2 return vectors remain, O(outputs) per batch).
//
// Slots are stable: growth never moves previously returned objects, so
// references stay valid until reset(). Contents of a reused slot are
// unspecified — callers overwrite (gemm with beta=0, gather_rows, the
// _into helpers). Like Arena, a Workspace is thread-private by design.
#pragma once

#include <memory>
#include <vector>

#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::tensor {

class Workspace {
public:
    Workspace() = default;
    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;

    /// A rows×cols matrix slot with unspecified contents.
    Matrix& matrix(std::size_t rows, std::size_t cols) {
        Matrix& m = next_matrix();
        m.resize(rows, cols);
        return m;
    }

    /// A rows×cols matrix slot, zero-filled.
    Matrix& zeros(std::size_t rows, std::size_t cols) {
        Matrix& m = matrix(rows, cols);
        m.fill(0.0);
        return m;
    }

    /// An n-element vector slot with unspecified contents.
    Vector& vector(std::size_t n) {
        if (vecs_live_ == vecs_.size()) vecs_.push_back(std::make_unique<Vector>());
        Vector& v = *vecs_[vecs_live_++];
        v.resize(n);
        return v;
    }

    /// Returns every slot to the pool. References handed out before the
    /// reset are reusable storage afterwards — treat them as dangling.
    void reset() {
        mats_live_ = 0;
        vecs_live_ = 0;
    }

    /// LIFO mark/rewind, mirroring Arena::Scope: slots acquired while a
    /// Scope is alive return to the pool when it is destroyed, while
    /// slots the caller already held stay live. Lets a callee (e.g.
    /// ridge_solve) borrow a caller's workspace — with per-call reuse of
    /// its own slots — without clobbering the caller's.
    class Scope {
    public:
        explicit Scope(Workspace& ws)
            : ws_(ws), mats_(ws.mats_live_), vecs_(ws.vecs_live_) {}
        ~Scope() {
            ws_.mats_live_ = mats_;
            ws_.vecs_live_ = vecs_;
        }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Workspace& ws_;
        std::size_t mats_;
        std::size_t vecs_;
    };

    std::size_t live_slots() const { return mats_live_ + vecs_live_; }
    std::size_t pooled_slots() const { return mats_.size() + vecs_.size(); }

private:
    Matrix& next_matrix() {
        if (mats_live_ == mats_.size()) mats_.push_back(std::make_unique<Matrix>());
        return *mats_[mats_live_++];
    }

    // unique_ptr slots so vector growth never relocates a handed-out object.
    std::vector<std::unique_ptr<Matrix>> mats_;
    std::vector<std::unique_ptr<Vector>> vecs_;
    std::size_t mats_live_ = 0;
    std::size_t vecs_live_ = 0;
};

}  // namespace xbarsec::tensor
