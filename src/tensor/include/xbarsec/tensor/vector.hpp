// Dense double-precision vector.
//
// The numerical core of xbarsec works in double precision throughout so
// that crossbar-algebra identities (Eq. 3-5 of the paper) are testable to
// machine precision. Vector is a thin, bounds-checked wrapper over
// contiguous storage with value semantics.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/rng.hpp"

namespace xbarsec::tensor {

/// Dense 1-D array of double with value semantics.
class Vector {
public:
    Vector() = default;

    /// n elements, all equal to `fill`.
    explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}

    Vector(std::initializer_list<double> init) : data_(init) {}

    /// Takes ownership of an existing buffer.
    explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

    /// Moves the underlying buffer out, leaving this vector empty —
    /// zero-copy adoption by Matrix::from_row and similar.
    std::vector<double> take() && { return std::move(data_); }

    // ---- factories ------------------------------------------------------

    static Vector zeros(std::size_t n) { return Vector(n, 0.0); }
    static Vector ones(std::size_t n) { return Vector(n, 1.0); }

    /// Scaled standard-basis vector: scale at index j, zero elsewhere.
    /// This is the probe input `u = β·e_j` from Section II-B of the paper.
    static Vector basis(std::size_t n, std::size_t j, double scale = 1.0) {
        XS_EXPECTS(j < n);
        Vector v(n, 0.0);
        v.data_[j] = scale;
        return v;
    }

    /// i.i.d. uniform entries in [lo, hi).
    static Vector random_uniform(Rng& rng, std::size_t n, double lo = 0.0, double hi = 1.0) {
        Vector v(n);
        for (auto& x : v.data_) x = rng.uniform(lo, hi);
        return v;
    }

    /// i.i.d. normal entries.
    static Vector random_normal(Rng& rng, std::size_t n, double mean = 0.0, double stddev = 1.0) {
        Vector v(n);
        for (auto& x : v.data_) x = rng.normal(mean, stddev);
        return v;
    }

    // ---- element access --------------------------------------------------

    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double operator[](std::size_t i) const {
        XS_ASSERT(i < data_.size());
        return data_[i];
    }
    double& operator[](std::size_t i) {
        XS_ASSERT(i < data_.size());
        return data_[i];
    }

    /// Always-checked access (throws ContractViolation when out of range).
    double at(std::size_t i) const {
        XS_EXPECTS(i < data_.size());
        return data_[i];
    }
    double& at(std::size_t i) {
        XS_EXPECTS(i < data_.size());
        return data_[i];
    }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    std::span<double> span() { return {data_.data(), data_.size()}; }
    std::span<const double> span() const { return {data_.data(), data_.size()}; }

    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    const std::vector<double>& storage() const { return data_; }

    // ---- in-place arithmetic ----------------------------------------------

    Vector& operator+=(const Vector& rhs);
    Vector& operator-=(const Vector& rhs);
    Vector& operator*=(double s);
    Vector& operator/=(double s);

    /// Sets every element to `value`.
    void fill(double value);

    /// Resizes, zero-filling any new elements.
    void resize(std::size_t n) { data_.resize(n, 0.0); }

    friend bool operator==(const Vector& a, const Vector& b) { return a.data_ == b.data_; }

private:
    std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector lhs, double s);
Vector operator*(double s, Vector rhs);
Vector operator/(Vector lhs, double s);

}  // namespace xbarsec::tensor
