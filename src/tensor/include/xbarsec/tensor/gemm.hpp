// General matrix-matrix multiply with transpose options.
//
// Minibatch training is expressed as GEMMs (X·Wᵀ forward, Gᵀ·X for weight
// gradients), and the crossbar simulator's batched inference path reduces
// to one GEMM against the differential conductance matrix — so this is the
// throughput core of the whole library. The implementation is a packed-panel
// kernel (no external BLAS dependency):
//
//   * the k dimension is blocked so a panel of each operand stays
//     cache-resident while it is consumed;
//   * B's k-slice is packed once per block into register-tile-wide strips,
//     A's rows are packed (alpha-scaled, transposes folded in) per
//     micro-panel — the inner loop only ever reads contiguous memory;
//   * the hot loop updates a 4×4 register tile of C, compiled twice: an
//     AVX2+FMA version picked at runtime when the CPU supports it, and a
//     portable baseline. No -march flags are required.
//
// Passing a ThreadPool shards the output over row panels. Each C element
// accumulates in the same order regardless of the partition, so the
// parallel product is bit-identical to the serial one (tested).
#pragma once

#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/matrix.hpp"

namespace xbarsec::tensor {

/// Whether an operand participates as itself or its transpose.
enum class Op { None, Transpose };

// ---- kernel-variant dispatch ------------------------------------------------
//
// The register-tile micro-kernel is compiled at three ISA levels and picked
// at runtime: portable 4×4 (plain C++), AVX2+FMA 6×8 / 6×4, and AVX-512F
// 12×8 / 8×8. `Auto` (the default) selects the widest arm the CPU supports
// per product shape. The other values force one arm — for conformance
// testing (ctest -L kernel runs the GEMM property suites once per variant)
// and for benchmarking the arms against each other. Forcing is also
// available without code via the XBARSEC_FORCE_KERNEL environment variable
// (auto | portable | avx2 | avx512), read once at first use; a
// set_kernel_variant() call overrides the environment.

enum class KernelVariant { Auto, Portable, Avx2, Avx512 };

/// Forces every subsequent gemm onto one kernel arm (process-wide).
/// Throws ConfigError when the CPU lacks the requested ISA.
void set_kernel_variant(KernelVariant v);

/// The forced variant currently in effect: a set_kernel_variant() override,
/// else XBARSEC_FORCE_KERNEL, else Auto. Throws ConfigError when the
/// environment variable is unparseable or names an unsupported ISA.
KernelVariant forced_kernel_variant();

/// Whether this CPU can run `v` (Auto and Portable are always available).
bool kernel_variant_available(KernelVariant v);

/// Lower-case name, matching the XBARSEC_FORCE_KERNEL spelling.
const char* to_string(KernelVariant v);

/// Inverse of to_string(); throws ConfigError on unknown names.
KernelVariant parse_kernel_variant(const std::string& name);

/// C = alpha * op(A) · op(B) + beta * C.
///
/// Shapes (after applying ops): op(A) is (m×k), op(B) is (k×n), C must be
/// (m×n). Aliasing C with A or B is not allowed. When `pool` is non-null
/// and the product is large enough to amortise task dispatch, row panels
/// of C are computed on the pool's workers (bit-identical to serial).
void gemm(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, double beta, Matrix& C,
          ThreadPool* pool = nullptr);

/// gemm without the wide-and-flat transpose-swap heuristic. Guarantees
/// that each row of C is produced by an accumulation chain that depends
/// only on (k, n) and that row of op(A) — never on m or the pool — so any
/// row partition of the batch yields bit-identical rows. The crossbar's
/// batched measurement paths use this for split-invariant reproducibility;
/// prefer plain gemm() everywhere throughput is the only requirement.
void gemm_rowstable(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, double beta,
                    Matrix& C, ThreadPool* pool = nullptr);

/// Convenience: returns A·B.
Matrix matmul(const Matrix& A, const Matrix& B);

/// Convenience: returns op(A)·op(B).
Matrix matmul(const Matrix& A, Op opA, const Matrix& B, Op opB);

}  // namespace xbarsec::tensor
