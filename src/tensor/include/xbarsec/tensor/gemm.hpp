// General matrix-matrix multiply with transpose options.
//
// Minibatch training is expressed as GEMMs (X·Wᵀ forward, Gᵀ·X for weight
// gradients), so this is the throughput core of the surrogate-training
// benches (Figure 5). The implementation is a cache-blocked triple loop —
// no external BLAS dependency — which reaches a few GFLOP/s on the target
// container; microbenchmarked by bench_micro.
#pragma once

#include "xbarsec/tensor/matrix.hpp"

namespace xbarsec::tensor {

/// Whether an operand participates as itself or its transpose.
enum class Op { None, Transpose };

/// C = alpha * op(A) · op(B) + beta * C.
///
/// Shapes (after applying ops): op(A) is (m×k), op(B) is (k×n), C must be
/// (m×n). Aliasing C with A or B is not allowed.
void gemm(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, double beta, Matrix& C);

/// Convenience: returns A·B.
Matrix matmul(const Matrix& A, const Matrix& B);

/// Convenience: returns op(A)·op(B).
Matrix matmul(const Matrix& A, Op opA, const Matrix& B, Op opB);

}  // namespace xbarsec::tensor
