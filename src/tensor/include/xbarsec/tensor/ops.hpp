// Elementwise and BLAS-1/2-level operations on Vector / Matrix.
//
// The crossbar algebra of the paper lives here in named form:
//   * matvec(W, u)          — Eq. 4's s = W·u
//   * column_abs_sums(W)    — Eq. 5-6's column 1-norms ‖W[:,j]‖₁,
//                             i.e. exactly what the power side channel leaks.
#pragma once

#include <cstddef>
#include <vector>

#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::tensor {

// ---- BLAS-1 ----------------------------------------------------------------

/// Inner product <a, b>.
double dot(const Vector& a, const Vector& b);

/// y += alpha * x.
void axpy(double alpha, const Vector& x, Vector& y);

/// Sum of elements.
double sum(const Vector& v);

/// Mean of elements; requires non-empty.
double mean(const Vector& v);

/// ℓ1 norm Σ|vᵢ|.
double norm1(const Vector& v);

/// ℓ2 norm sqrt(Σvᵢ²).
double norm2(const Vector& v);

/// ℓ∞ norm max|vᵢ|.
double norm_inf(const Vector& v);

/// Index of the largest element (first on ties); requires non-empty.
std::size_t argmax(const Vector& v);

/// Index of the smallest element (first on ties); requires non-empty.
std::size_t argmin(const Vector& v);

/// Largest element value; requires non-empty.
double max(const Vector& v);

/// Smallest element value; requires non-empty.
double min(const Vector& v);

/// Elementwise product a ⊙ b.
Vector hadamard(const Vector& a, const Vector& b);

/// Elementwise absolute value.
Vector abs(const Vector& v);

/// Elementwise sign (+1 / 0 / -1).
Vector sign(const Vector& v);

/// Elementwise clamp into [lo, hi].
Vector clamp(const Vector& v, double lo, double hi);

/// True when every element is finite.
bool all_finite(const Vector& v);

// ---- BLAS-2 ----------------------------------------------------------------

/// Returns W·u. W is (M×N), u is (N); result is (M). This is Eq. 4's
/// pre-activation vector s.
Vector matvec(const Matrix& W, const Vector& u);

/// Pool-sharded matvec: W's rows are processed in cache-resident tiles on
/// the pool's workers. Bit-identical to the serial overload for any tile
/// partition (rows are independent).
Vector matvec(const Matrix& W, const Vector& u, ThreadPool* pool);

/// Per-row dots: out[r] = dot(V.row(r), g), every row computed with
/// exactly the accumulation chain of the scalar dot() — unlike matvec(),
/// whose 4-row blocking makes a row's rounding depend on its position in
/// the batch. Row results are therefore bit-identical across batch
/// splits, pool sizes, and against scalar dot() calls. This is the
/// batched power-channel kernel: total_current_batch(V) is
/// rowwise_dot(V, G_col).
Vector rowwise_dot(const Matrix& V, const Vector& g, ThreadPool* pool = nullptr);

/// Returns Wᵀ·v without forming the transpose. W is (M×N), v is (M);
/// result is (N).
Vector matvec_transposed(const Matrix& W, const Vector& v);

/// Rank-1 update A += alpha * u·vᵀ. u is (rows), v is (cols).
void ger(double alpha, const Vector& u, const Vector& v, Matrix& A);

/// Outer product u·vᵀ as a new matrix.
Matrix outer(const Vector& u, const Vector& v);

// ---- row gathers -------------------------------------------------------------

/// Copies rows src[idx[lo]], …, src[idx[hi-1]] into `out` (resized to
/// (hi−lo)×src.cols(), prior contents discarded; must not alias src).
/// This is the minibatch gather every trainer runs per iteration — callers
/// pass a Workspace slot so the steady-state loop performs no allocation.
void gather_rows(const Matrix& src, const std::vector<std::size_t>& idx, std::size_t lo,
                 std::size_t hi, Matrix& out);

// ---- matrix reductions -------------------------------------------------------

/// Column-wise 1-norms: out[j] = Σᵢ |W(i,j)|. Under the paper's one-sided
/// conductance mapping this is (up to the mapping scale) the quantity the
/// total crossbar current reveals for basis-vector inputs (Eq. 5-6).
Vector column_abs_sums(const Matrix& W);

/// Row-wise 1-norms: out[i] = Σⱼ |W(i,j)|.
Vector row_abs_sums(const Matrix& W);

/// Column-wise sums (signed).
Vector column_sums(const Matrix& W);

/// column_sums into a caller-provided vector (resized, zero-filled
/// first). The trainers' bias-gradient path uses this with a hoisted
/// buffer so the minibatch loop stays allocation-free.
void column_sums_into(const Matrix& W, Vector& out);

/// Row-wise argmax as integer labels: out[r] = argmax of row r (first on
/// ties). The batched classification reduction shared by the software
/// and crossbar inference paths.
std::vector<int> argmax_rows(const Matrix& M);

/// Mean squared row norm E[‖row‖²] over (at most max_rows of) W's rows.
/// Used to scale learning rates to the data: the GD stability bound for
/// a dense layer scales with 1/E[‖u‖²].
double mean_squared_row_norm(const Matrix& W, std::size_t max_rows = 0);

/// Frobenius norm.
double frobenius_norm(const Matrix& W);

/// Largest absolute element.
double max_abs(const Matrix& W);

/// True when every element is finite.
bool all_finite(const Matrix& W);

}  // namespace xbarsec::tensor
