// Dense row-major double-precision matrix.
//
// The weight matrices in the paper are small (10×784, 10×3072), so a plain
// contiguous row-major layout with a blocked GEMM (gemm.hpp) is more than
// adequate and keeps every numerical identity easy to audit.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::tensor {

/// Dense 2-D array of double, row-major, value semantics.
class Matrix {
public:
    Matrix() = default;

    /// rows×cols matrix, all elements equal to `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    /// Row-of-rows initializer; all rows must have equal length.
    Matrix(std::initializer_list<std::initializer_list<double>> init);

    // ---- factories ------------------------------------------------------

    static Matrix zeros(std::size_t rows, std::size_t cols) { return {rows, cols, 0.0}; }
    static Matrix ones(std::size_t rows, std::size_t cols) { return {rows, cols, 1.0}; }
    static Matrix identity(std::size_t n);

    /// i.i.d. uniform entries in [lo, hi).
    static Matrix random_uniform(Rng& rng, std::size_t rows, std::size_t cols, double lo = 0.0,
                                 double hi = 1.0);

    /// i.i.d. normal entries.
    static Matrix random_normal(Rng& rng, std::size_t rows, std::size_t cols, double mean = 0.0,
                                double stddev = 1.0);

    /// Builds a matrix whose i-th row is rows[i] (all same length).
    static Matrix from_rows(const std::vector<Vector>& rows);

    /// 1×n matrix adopting the vector's storage (no copy). The serving
    /// layer uses this to wrap scalar query submissions as one-row
    /// batches without touching the payload.
    static Matrix from_row(Vector v) {
        Matrix m;
        m.rows_ = 1;
        m.cols_ = v.size();
        m.data_ = std::move(v).take();
        return m;
    }

    // ---- shape -----------------------------------------------------------

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    // ---- element access --------------------------------------------------

    double operator()(std::size_t i, std::size_t j) const {
        XS_ASSERT(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }
    double& operator()(std::size_t i, std::size_t j) {
        XS_ASSERT(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }

    /// Always-checked access.
    double at(std::size_t i, std::size_t j) const {
        XS_EXPECTS(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }
    double& at(std::size_t i, std::size_t j) {
        XS_EXPECTS(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    /// Contiguous view of row i.
    std::span<double> row_span(std::size_t i) {
        XS_EXPECTS(i < rows_);
        return {data_.data() + i * cols_, cols_};
    }
    std::span<const double> row_span(std::size_t i) const {
        XS_EXPECTS(i < rows_);
        return {data_.data() + i * cols_, cols_};
    }

    /// Copies of a row / column as Vector.
    Vector row(std::size_t i) const;
    Vector col(std::size_t j) const;

    void set_row(std::size_t i, const Vector& v);
    void set_col(std::size_t j, const Vector& v);

    // ---- whole-matrix operations ------------------------------------------

    /// Returns the transpose (new storage).
    Matrix transposed() const;

    /// Reshape view is not provided; reshaped() copies into a new shape with
    /// the same element count.
    Matrix reshaped(std::size_t rows, std::size_t cols) const;

    /// Destructive in-place reshape to rows×cols, reusing the existing
    /// heap capacity when it suffices. Element values are unspecified
    /// afterwards — this exists for workspace reuse (Workspace), where the
    /// caller overwrites the whole matrix anyway.
    void resize(std::size_t rows, std::size_t cols) {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(double s);

    void fill(double value);

    friend bool operator==(const Matrix& a, const Matrix& b) {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double s);
Matrix operator*(double s, Matrix rhs);

}  // namespace xbarsec::tensor
