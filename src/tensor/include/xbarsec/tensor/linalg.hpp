// Dense linear-algebra kernels: Householder QR, least squares,
// pseudoinverse, Cholesky / ridge solves.
//
// Section IV of the paper observes that once the attacker has Q ≥ N
// independent (input, output) query pairs, the oracle weight matrix is
// exactly recoverable as W = U†·Ŷ and the power side channel becomes
// redundant. lstsq()/pinv() implement that boundary analysis (tested and
// benchmarked by bench_pinv_boundary).
#pragma once

#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"
#include "xbarsec/tensor/workspace.hpp"

namespace xbarsec::tensor {

/// Compact Householder QR of an m×n matrix with m ≥ n.
/// `qr` stores R in its upper triangle and the Householder vectors below
/// the diagonal (LAPACK geqrf layout); `tau` holds the reflector scales.
struct QrFactorization {
    Matrix qr;
    Vector tau;

    std::size_t rows() const { return qr.rows(); }
    std::size_t cols() const { return qr.cols(); }
};

/// Computes the Householder QR factorization. Requires rows ≥ cols.
QrFactorization qr_decompose(Matrix A);

/// Applies Qᵀ (from the factorization) to B in place. B must have
/// f.rows() rows.
void apply_q_transpose(const QrFactorization& f, Matrix& B);

/// Back-substitution with the upper-triangular R factor:
/// solves R·X = B[0:n, :] and returns the n×k solution.
/// Throws Error if R is numerically singular.
Matrix solve_upper(const QrFactorization& f, const Matrix& B);

/// Least squares: returns argmin_X ‖A·X − B‖_F for A (m×n, m ≥ n, full
/// column rank) and B (m×k). Throws Error when A is rank-deficient to
/// working precision.
Matrix lstsq(const Matrix& A, const Matrix& B);

/// Vector right-hand-side overload.
Vector lstsq(const Matrix& A, const Vector& b);

/// Moore-Penrose pseudoinverse via QR (full-rank case). For m ≥ n this is
/// (AᵀA)⁻¹Aᵀ computed stably from the QR factors; for m < n the transpose
/// identity A† = (Aᵀ)†ᵀ is used.
Matrix pinv(const Matrix& A);

/// Cholesky factorization of a symmetric positive-definite matrix;
/// returns lower-triangular L with A = L·Lᵀ. Throws Error if A is not
/// positive definite.
Matrix cholesky(const Matrix& A);

/// Solves A·X = B for SPD A using its Cholesky factorization.
Matrix solve_spd(const Matrix& A, const Matrix& B);

/// Ridge regression solve: returns argmin_X ‖A·X − B‖² + λ‖X‖², i.e.
/// X = (AᵀA + λI)⁻¹ AᵀB. λ must be ≥ 0; with λ = 0 A must have full
/// column rank. The normal-equations products AᵀA and AᵀB run as blocked
/// kernel-layer GEMMs, sharded over `pool` when given (the dominant cost
/// for Q×N query matrices; the N×N Cholesky solve stays serial). When a
/// Workspace is given, the N×N / N×M normal-equations temporaries are
/// drawn from it under a Workspace::Scope — reused across calls, without
/// touching slots the caller still holds.
Matrix ridge_solve(const Matrix& A, const Matrix& B, double lambda, ThreadPool* pool = nullptr,
                   Workspace* ws = nullptr);

}  // namespace xbarsec::tensor
