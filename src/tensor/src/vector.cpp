#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::tensor {

Vector& Vector::operator+=(const Vector& rhs) {
    XS_EXPECTS(size() == rhs.size());
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
    XS_EXPECTS(size() == rhs.size());
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Vector& Vector::operator*=(double s) {
    for (auto& x : data_) x *= s;
    return *this;
}

Vector& Vector::operator/=(double s) {
    XS_EXPECTS(s != 0.0);
    for (auto& x : data_) x /= s;
    return *this;
}

void Vector::fill(double value) {
    for (auto& x : data_) x = value;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector lhs, double s) { return lhs *= s; }
Vector operator*(double s, Vector rhs) { return rhs *= s; }
Vector operator/(Vector lhs, double s) { return lhs /= s; }

}  // namespace xbarsec::tensor
