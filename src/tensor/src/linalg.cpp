#include "xbarsec/tensor/linalg.hpp"

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/gemm.hpp"

namespace xbarsec::tensor {

namespace {
constexpr double kSingularTol = 1e-12;
}

QrFactorization qr_decompose(Matrix A) {
    const std::size_t m = A.rows(), n = A.cols();
    XS_EXPECTS_MSG(m >= n, "qr_decompose requires rows >= cols");
    Vector tau(n, 0.0);

    for (std::size_t k = 0; k < n; ++k) {
        // Build the Householder reflector that annihilates A[k+1:, k].
        double norm_x = 0.0;
        for (std::size_t i = k; i < m; ++i) norm_x += A(i, k) * A(i, k);
        norm_x = std::sqrt(norm_x);
        if (norm_x == 0.0) {
            tau[k] = 0.0;
            continue;
        }
        const double alpha = A(k, k) >= 0.0 ? -norm_x : norm_x;
        const double v0 = A(k, k) - alpha;
        // v = (v0, A[k+1:, k]); normalize so v[0] == 1 (stored implicitly).
        for (std::size_t i = k + 1; i < m; ++i) A(i, k) /= v0;
        tau[k] = -v0 / alpha;  // == 2 / (vᵀv) with v[0] = 1 scaling
        A(k, k) = alpha;

        // Apply (I - tau v vᵀ) to the remaining columns.
        for (std::size_t j = k + 1; j < n; ++j) {
            double s = A(k, j);
            for (std::size_t i = k + 1; i < m; ++i) s += A(i, k) * A(i, j);
            s *= tau[k];
            A(k, j) -= s;
            for (std::size_t i = k + 1; i < m; ++i) A(i, j) -= s * A(i, k);
        }
    }
    return {std::move(A), std::move(tau)};
}

void apply_q_transpose(const QrFactorization& f, Matrix& B) {
    const std::size_t m = f.rows(), n = f.cols();
    XS_EXPECTS(B.rows() == m);
    const std::size_t k = B.cols();
    // Qᵀ = H_{n-1} … H_1 H_0 applied in factorization order.
    for (std::size_t c = 0; c < n; ++c) {
        if (f.tau[c] == 0.0) continue;
        for (std::size_t j = 0; j < k; ++j) {
            double s = B(c, j);
            for (std::size_t i = c + 1; i < m; ++i) s += f.qr(i, c) * B(i, j);
            s *= f.tau[c];
            B(c, j) -= s;
            for (std::size_t i = c + 1; i < m; ++i) B(i, j) -= s * f.qr(i, c);
        }
    }
}

Matrix solve_upper(const QrFactorization& f, const Matrix& B) {
    const std::size_t n = f.cols();
    XS_EXPECTS(B.rows() >= n);
    const std::size_t k = B.cols();
    Matrix X(n, k, 0.0);
    for (std::size_t jj = 0; jj < k; ++jj) {
        for (std::size_t irev = 0; irev < n; ++irev) {
            const std::size_t i = n - 1 - irev;
            double s = B(i, jj);
            for (std::size_t c = i + 1; c < n; ++c) s -= f.qr(i, c) * X(c, jj);
            const double diag = f.qr(i, i);
            if (std::abs(diag) < kSingularTol) {
                throw Error("lstsq: matrix is rank-deficient to working precision");
            }
            X(i, jj) = s / diag;
        }
    }
    return X;
}

Matrix lstsq(const Matrix& A, const Matrix& B) {
    XS_EXPECTS(A.rows() == B.rows());
    XS_EXPECTS_MSG(A.rows() >= A.cols(), "lstsq requires an overdetermined (or square) system");
    const QrFactorization f = qr_decompose(A);
    Matrix QtB = B;
    apply_q_transpose(f, QtB);
    return solve_upper(f, QtB);
}

Vector lstsq(const Matrix& A, const Vector& b) {
    Matrix B(b.size(), 1);
    for (std::size_t i = 0; i < b.size(); ++i) B(i, 0) = b[i];
    const Matrix X = lstsq(A, B);
    Vector x(X.rows());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = X(i, 0);
    return x;
}

Matrix pinv(const Matrix& A) {
    XS_EXPECTS(!A.empty());
    if (A.rows() >= A.cols()) {
        return lstsq(A, Matrix::identity(A.rows()));
    }
    // Wide matrix: A† = (Aᵀ)†ᵀ.
    return pinv(A.transposed()).transposed();
}

Matrix cholesky(const Matrix& A) {
    XS_EXPECTS(A.rows() == A.cols());
    const std::size_t n = A.rows();
    Matrix L(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = A(i, j);
            for (std::size_t c = 0; c < j; ++c) s -= L(i, c) * L(j, c);
            if (i == j) {
                if (s <= 0.0) throw Error("cholesky: matrix is not positive definite");
                L(i, i) = std::sqrt(s);
            } else {
                L(i, j) = s / L(j, j);
            }
        }
    }
    return L;
}

Matrix solve_spd(const Matrix& A, const Matrix& B) {
    XS_EXPECTS(A.rows() == B.rows());
    const Matrix L = cholesky(A);
    const std::size_t n = A.rows(), k = B.cols();
    // Forward substitution L·Y = B.
    Matrix Y(n, k, 0.0);
    for (std::size_t jj = 0; jj < k; ++jj) {
        for (std::size_t i = 0; i < n; ++i) {
            double s = B(i, jj);
            for (std::size_t c = 0; c < i; ++c) s -= L(i, c) * Y(c, jj);
            Y(i, jj) = s / L(i, i);
        }
    }
    // Back substitution Lᵀ·X = Y.
    Matrix X(n, k, 0.0);
    for (std::size_t jj = 0; jj < k; ++jj) {
        for (std::size_t irev = 0; irev < n; ++irev) {
            const std::size_t i = n - 1 - irev;
            double s = Y(i, jj);
            for (std::size_t c = i + 1; c < n; ++c) s -= L(c, i) * X(c, jj);
            X(i, jj) = s / L(i, i);
        }
    }
    return X;
}

Matrix ridge_solve(const Matrix& A, const Matrix& B, double lambda, ThreadPool* pool,
                   Workspace* ws) {
    XS_EXPECTS(lambda >= 0.0);
    XS_EXPECTS(A.rows() == B.rows());
    // Normal equations (AᵀA + λI) X = AᵀB. Fine for the modest condition
    // numbers of this library's workloads; lstsq() is the stable path for
    // λ = 0 when m ≥ n. Both products are blocked over the kernel layer
    // and shard across `pool` (AᵀA is the O(Q·N²) bulk of the solve).
    // The N×N / N×M temporaries draw from `ws` when given, so repeated
    // fits (query-budget sweeps) stop reallocating them; the Scope
    // rewind means slots the caller already holds stay untouched.
    Workspace local_ws;
    Workspace& scratch = ws != nullptr ? *ws : local_ws;
    const Workspace::Scope scope(scratch);
    Matrix& AtA = scratch.matrix(A.cols(), A.cols());
    gemm(1.0, A, Op::Transpose, A, Op::None, 0.0, AtA, pool);
    for (std::size_t i = 0; i < AtA.rows(); ++i) AtA(i, i) += lambda;
    Matrix& AtB = scratch.matrix(A.cols(), B.cols());
    gemm(1.0, A, Op::Transpose, B, Op::None, 0.0, AtB, pool);
    return solve_spd(AtA, AtB);
}

}  // namespace xbarsec::tensor
