#include "xbarsec/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace xbarsec::tensor {

double dot(const Vector& a, const Vector& b) {
    XS_EXPECTS(a.size() == b.size());
    double acc = 0.0;
    const double* pa = a.data();
    const double* pb = b.data();
    for (std::size_t i = 0; i < a.size(); ++i) acc += pa[i] * pb[i];
    return acc;
}

void axpy(double alpha, const Vector& x, Vector& y) {
    XS_EXPECTS(x.size() == y.size());
    const double* px = x.data();
    double* py = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

double sum(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc += x;
    return acc;
}

double mean(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return sum(v) / static_cast<double>(v.size());
}

double norm1(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc += std::abs(x);
    return acc;
}

double norm2(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc += x * x;
    return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc = std::max(acc, std::abs(x));
    return acc;
}

std::size_t argmax(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmin(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return static_cast<std::size_t>(std::min_element(v.begin(), v.end()) - v.begin());
}

double max(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return *std::max_element(v.begin(), v.end());
}

double min(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return *std::min_element(v.begin(), v.end());
}

Vector hadamard(const Vector& a, const Vector& b) {
    XS_EXPECTS(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
    return out;
}

Vector abs(const Vector& v) {
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::abs(v[i]);
    return out;
}

Vector sign(const Vector& v) {
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        out[i] = v[i] > 0.0 ? 1.0 : (v[i] < 0.0 ? -1.0 : 0.0);
    }
    return out;
}

Vector clamp(const Vector& v, double lo, double hi) {
    XS_EXPECTS(lo <= hi);
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::clamp(v[i], lo, hi);
    return out;
}

bool all_finite(const Vector& v) {
    for (double x : v)
        if (!std::isfinite(x)) return false;
    return true;
}

Vector matvec(const Matrix& W, const Vector& u) {
    XS_EXPECTS(W.cols() == u.size());
    Vector out(W.rows());
    const double* pu = u.data();
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const auto row = W.row_span(i);
        double acc = 0.0;
        for (std::size_t j = 0; j < row.size(); ++j) acc += row[j] * pu[j];
        out[i] = acc;
    }
    return out;
}

Vector matvec_transposed(const Matrix& W, const Vector& v) {
    XS_EXPECTS(W.rows() == v.size());
    Vector out(W.cols(), 0.0);
    double* po = out.data();
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const auto row = W.row_span(i);
        const double vi = v[i];
        if (vi == 0.0) continue;
        for (std::size_t j = 0; j < row.size(); ++j) po[j] += vi * row[j];
    }
    return out;
}

void ger(double alpha, const Vector& u, const Vector& v, Matrix& A) {
    XS_EXPECTS(A.rows() == u.size() && A.cols() == v.size());
    for (std::size_t i = 0; i < u.size(); ++i) {
        const double aui = alpha * u[i];
        if (aui == 0.0) continue;
        auto row = A.row_span(i);
        const double* pv = v.data();
        for (std::size_t j = 0; j < row.size(); ++j) row[j] += aui * pv[j];
    }
}

Matrix outer(const Vector& u, const Vector& v) {
    Matrix A(u.size(), v.size(), 0.0);
    ger(1.0, u, v, A);
    return A;
}

Vector column_abs_sums(const Matrix& W) {
    Vector out(W.cols(), 0.0);
    double* po = out.data();
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const auto row = W.row_span(i);
        for (std::size_t j = 0; j < row.size(); ++j) po[j] += std::abs(row[j]);
    }
    return out;
}

Vector row_abs_sums(const Matrix& W) {
    Vector out(W.rows(), 0.0);
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const auto row = W.row_span(i);
        double acc = 0.0;
        for (double x : row) acc += std::abs(x);
        out[i] = acc;
    }
    return out;
}

Vector column_sums(const Matrix& W) {
    Vector out(W.cols(), 0.0);
    double* po = out.data();
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const auto row = W.row_span(i);
        for (std::size_t j = 0; j < row.size(); ++j) po[j] += row[j];
    }
    return out;
}

std::vector<int> argmax_rows(const Matrix& M) {
    XS_EXPECTS(M.cols() > 0);
    std::vector<int> out(M.rows());
    for (std::size_t r = 0; r < M.rows(); ++r) {
        const auto row = M.row_span(r);
        std::size_t best = 0;
        for (std::size_t j = 1; j < row.size(); ++j) {
            if (row[j] > row[best]) best = j;
        }
        out[r] = static_cast<int>(best);
    }
    return out;
}

double mean_squared_row_norm(const Matrix& W, std::size_t max_rows) {
    XS_EXPECTS(W.rows() > 0);
    const std::size_t rows = max_rows == 0 ? W.rows() : std::min(max_rows, W.rows());
    double acc = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
        const auto row = W.row_span(i);
        for (const double x : row) acc += x * x;
    }
    return acc / static_cast<double>(rows);
}

double frobenius_norm(const Matrix& W) {
    double acc = 0.0;
    const double* p = W.data();
    for (std::size_t i = 0; i < W.size(); ++i) acc += p[i] * p[i];
    return std::sqrt(acc);
}

double max_abs(const Matrix& W) {
    double acc = 0.0;
    const double* p = W.data();
    for (std::size_t i = 0; i < W.size(); ++i) acc = std::max(acc, std::abs(p[i]));
    return acc;
}

bool all_finite(const Matrix& W) {
    const double* p = W.data();
    for (std::size_t i = 0; i < W.size(); ++i)
        if (!std::isfinite(p[i])) return false;
    return true;
}

}  // namespace xbarsec::tensor
