#include "xbarsec/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

namespace xbarsec::tensor {

namespace {

/// Four-chain inner product: partial sums break the single add-latency
/// dependency chain so the loop pipelines (and vectorizes) instead of
/// serialising on one accumulator.
inline double dot_kernel(const double* __restrict pa, const double* __restrict pb, std::size_t n) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += pa[i] * pb[i];
        a1 += pa[i + 1] * pb[i + 1];
        a2 += pa[i + 2] * pb[i + 2];
        a3 += pa[i + 3] * pb[i + 3];
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; i < n; ++i) acc += pa[i] * pb[i];
    return acc;
}

/// Four rows against one shared vector: every u load is amortised over
/// four independent accumulator chains.
inline void dot_rows4(const double* __restrict r0, const double* __restrict r1,
                      const double* __restrict r2, const double* __restrict r3,
                      const double* __restrict u, std::size_t n, double* __restrict out) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
    std::size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const double u0 = u[j], u1 = u[j + 1];
        a0 += r0[j] * u0;
        b0 += r0[j + 1] * u1;
        a1 += r1[j] * u0;
        b1 += r1[j + 1] * u1;
        a2 += r2[j] * u0;
        b2 += r2[j + 1] * u1;
        a3 += r3[j] * u0;
        b3 += r3[j + 1] * u1;
    }
    for (; j < n; ++j) {
        const double u0 = u[j];
        a0 += r0[j] * u0;
        a1 += r1[j] * u0;
        a2 += r2[j] * u0;
        a3 += r3[j] * u0;
    }
    out[0] = a0 + b0;
    out[1] = a1 + b1;
    out[2] = a2 + b2;
    out[3] = a3 + b3;
}

}  // namespace

double dot(const Vector& a, const Vector& b) {
    XS_EXPECTS(a.size() == b.size());
    return dot_kernel(a.data(), b.data(), a.size());
}

void axpy(double alpha, const Vector& x, Vector& y) {
    XS_EXPECTS(x.size() == y.size());
    const double* __restrict px = x.data();
    double* __restrict py = y.data();
    for (std::size_t i = 0; i < x.size(); ++i) py[i] += alpha * px[i];
}

double sum(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc += x;
    return acc;
}

double mean(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return sum(v) / static_cast<double>(v.size());
}

double norm1(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc += std::abs(x);
    return acc;
}

double norm2(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc += x * x;
    return std::sqrt(acc);
}

double norm_inf(const Vector& v) {
    double acc = 0.0;
    for (double x : v) acc = std::max(acc, std::abs(x));
    return acc;
}

std::size_t argmax(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return static_cast<std::size_t>(std::max_element(v.begin(), v.end()) - v.begin());
}

std::size_t argmin(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return static_cast<std::size_t>(std::min_element(v.begin(), v.end()) - v.begin());
}

double max(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return *std::max_element(v.begin(), v.end());
}

double min(const Vector& v) {
    XS_EXPECTS(!v.empty());
    return *std::min_element(v.begin(), v.end());
}

Vector hadamard(const Vector& a, const Vector& b) {
    XS_EXPECTS(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
    return out;
}

Vector abs(const Vector& v) {
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::abs(v[i]);
    return out;
}

Vector sign(const Vector& v) {
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        out[i] = v[i] > 0.0 ? 1.0 : (v[i] < 0.0 ? -1.0 : 0.0);
    }
    return out;
}

Vector clamp(const Vector& v, double lo, double hi) {
    XS_EXPECTS(lo <= hi);
    Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = std::clamp(v[i], lo, hi);
    return out;
}

bool all_finite(const Vector& v) {
    for (double x : v)
        if (!std::isfinite(x)) return false;
    return true;
}

namespace {

/// Row-range worker for matvec: 4-row blocks share u loads; tail rows run
/// the plain four-chain dot. Rows are independent, so any row partition
/// that starts blocks at multiples of 4 gives bit-identical results.
void matvec_rows(const Matrix& W, const double* __restrict pu, std::size_t i0, std::size_t i1,
                 double* __restrict po) {
    const std::size_t n = W.cols();
    const double* const base = W.data();
    std::size_t i = i0;
    for (; i + 4 <= i1; i += 4) {
        dot_rows4(base + i * n, base + (i + 1) * n, base + (i + 2) * n, base + (i + 3) * n, pu, n,
                  po + i);
    }
    for (; i < i1; ++i) po[i] = dot_kernel(base + i * n, pu, n);
}

}  // namespace

Vector matvec(const Matrix& W, const Vector& u) { return matvec(W, u, nullptr); }

Vector matvec(const Matrix& W, const Vector& u, ThreadPool* pool) {
    XS_EXPECTS(W.cols() == u.size());
    Vector out(W.rows());
    const std::size_t m = W.rows(), n = W.cols();

    // Tile the rows so each task's slice of W stays cache-resident while
    // it is consumed; multiples of 4 keep the row blocking — and thus the
    // floating-point result — identical to the serial pass.
    constexpr std::size_t kTileBytes = 1u << 20;
    std::size_t rows_per_tile = kTileBytes / (8 * std::max<std::size_t>(n, 1));
    rows_per_tile = std::max<std::size_t>(64, (rows_per_tile / 4) * 4);

    if (pool != nullptr && m >= 2 * rows_per_tile) {
        const std::size_t tiles = (m + rows_per_tile - 1) / rows_per_tile;
        parallel_for(*pool, tiles, [&](std::size_t t) {
            const std::size_t r0 = t * rows_per_tile;
            matvec_rows(W, u.data(), r0, std::min(r0 + rows_per_tile, m), out.data());
        });
    } else {
        matvec_rows(W, u.data(), 0, m, out.data());
    }
    return out;
}

Vector rowwise_dot(const Matrix& V, const Vector& g, ThreadPool* pool) {
    XS_EXPECTS(V.cols() == g.size());
    const std::size_t m = V.rows(), n = V.cols();
    Vector out(m, 0.0);
    const double* const base = V.data();
    const double* const pg = g.data();
    double* const po = out.data();

    // One dot_kernel chain per row: the per-row result is a pure function
    // of that row, so any partition of the rows — serial, pooled, or a
    // caller-side batch split — produces identical bits.
    auto run_rows = [&](std::size_t r0, std::size_t r1) {
        for (std::size_t r = r0; r < r1; ++r) po[r] = dot_kernel(base + r * n, pg, n);
    };
    constexpr std::size_t kRowsPerTask = 64;
    if (pool != nullptr && m >= 2 * kRowsPerTask) {
        const std::size_t tasks = (m + kRowsPerTask - 1) / kRowsPerTask;
        parallel_for(*pool, tasks, [&](std::size_t t) {
            const std::size_t r0 = t * kRowsPerTask;
            run_rows(r0, std::min(r0 + kRowsPerTask, m));
        });
    } else {
        run_rows(0, m);
    }
    return out;
}

Vector matvec_transposed(const Matrix& W, const Vector& v) {
    XS_EXPECTS(W.rows() == v.size());
    Vector out(W.cols(), 0.0);
    double* __restrict po = out.data();
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const double* __restrict row = W.data() + i * W.cols();
        const double vi = v[i];
        for (std::size_t j = 0; j < W.cols(); ++j) po[j] += vi * row[j];
    }
    return out;
}

void ger(double alpha, const Vector& u, const Vector& v, Matrix& A) {
    XS_EXPECTS(A.rows() == u.size() && A.cols() == v.size());
    const double* __restrict pv = v.data();
    for (std::size_t i = 0; i < u.size(); ++i) {
        const double aui = alpha * u[i];
        double* __restrict row = A.data() + i * A.cols();
        for (std::size_t j = 0; j < A.cols(); ++j) row[j] += aui * pv[j];
    }
}

Matrix outer(const Vector& u, const Vector& v) {
    Matrix A(u.size(), v.size(), 0.0);
    ger(1.0, u, v, A);
    return A;
}

Vector column_abs_sums(const Matrix& W) {
    Vector out(W.cols(), 0.0);
    double* __restrict po = out.data();
    const std::size_t n = W.cols();
    const double* const base = W.data();
    // Four rows per pass quarters the traffic through the accumulator row.
    std::size_t i = 0;
    for (; i + 4 <= W.rows(); i += 4) {
        const double* __restrict r0 = base + i * n;
        const double* __restrict r1 = base + (i + 1) * n;
        const double* __restrict r2 = base + (i + 2) * n;
        const double* __restrict r3 = base + (i + 3) * n;
        for (std::size_t j = 0; j < n; ++j) {
            po[j] += (std::abs(r0[j]) + std::abs(r1[j])) + (std::abs(r2[j]) + std::abs(r3[j]));
        }
    }
    for (; i < W.rows(); ++i) {
        const double* __restrict row = base + i * n;
        for (std::size_t j = 0; j < n; ++j) po[j] += std::abs(row[j]);
    }
    return out;
}

Vector row_abs_sums(const Matrix& W) {
    Vector out(W.rows(), 0.0);
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const auto row = W.row_span(i);
        double acc = 0.0;
        for (double x : row) acc += std::abs(x);
        out[i] = acc;
    }
    return out;
}

Vector column_sums(const Matrix& W) {
    Vector out;
    column_sums_into(W, out);
    return out;
}

void column_sums_into(const Matrix& W, Vector& out) {
    out.resize(W.cols());
    out.fill(0.0);
    double* po = out.data();
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const auto row = W.row_span(i);
        for (std::size_t j = 0; j < row.size(); ++j) po[j] += row[j];
    }
}

std::vector<int> argmax_rows(const Matrix& M) {
    XS_EXPECTS(M.cols() > 0);
    std::vector<int> out(M.rows());
    for (std::size_t r = 0; r < M.rows(); ++r) {
        const auto row = M.row_span(r);
        std::size_t best = 0;
        for (std::size_t j = 1; j < row.size(); ++j) {
            if (row[j] > row[best]) best = j;
        }
        out[r] = static_cast<int>(best);
    }
    return out;
}

double mean_squared_row_norm(const Matrix& W, std::size_t max_rows) {
    XS_EXPECTS(W.rows() > 0);
    const std::size_t rows = max_rows == 0 ? W.rows() : std::min(max_rows, W.rows());
    double acc = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
        const auto row = W.row_span(i);
        for (const double x : row) acc += x * x;
    }
    return acc / static_cast<double>(rows);
}

double frobenius_norm(const Matrix& W) {
    double acc = 0.0;
    const double* p = W.data();
    for (std::size_t i = 0; i < W.size(); ++i) acc += p[i] * p[i];
    return std::sqrt(acc);
}

double max_abs(const Matrix& W) {
    double acc = 0.0;
    const double* p = W.data();
    for (std::size_t i = 0; i < W.size(); ++i) acc = std::max(acc, std::abs(p[i]));
    return acc;
}

bool all_finite(const Matrix& W) {
    const double* p = W.data();
    for (std::size_t i = 0; i < W.size(); ++i)
        if (!std::isfinite(p[i])) return false;
    return true;
}

void gather_rows(const Matrix& src, const std::vector<std::size_t>& idx, std::size_t lo,
                 std::size_t hi, Matrix& out) {
    XS_EXPECTS(lo <= hi && hi <= idx.size());
    XS_EXPECTS(&out != &src);
    out.resize(hi - lo, src.cols());
    for (std::size_t r = lo; r < hi; ++r) {
        XS_EXPECTS(idx[r] < src.rows());
        const auto s = src.row_span(idx[r]);
        auto d = out.row_span(r - lo);
        std::copy(s.begin(), s.end(), d.begin());
    }
}

}  // namespace xbarsec::tensor
