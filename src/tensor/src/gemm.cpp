#include "xbarsec/tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

#include "xbarsec/common/arena.hpp"
#include "xbarsec/common/error.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

namespace xbarsec::tensor {

namespace {

// ---- kernel geometry --------------------------------------------------------

/// Depth of the packed panels. One micro-panel of A (≤ 12 rows × kBlockK)
/// and one B strip (kBlockK × ≤ 8) sit comfortably in L1 while a tile runs.
constexpr std::size_t kBlockK = 256;

/// Rows per parallel task. Each C row accumulates its k-terms in p-ascending
/// order in its own registers, independent of which rows share a tile, so
/// any row partition is bit-identical to the serial product (tested by
/// Gemm.ParallelMatchesSerialBitForBit).
constexpr std::size_t kRowsPerPanel = 64;

/// Smallest 2·m·n·k worth sharding (task dispatch costs microseconds).
constexpr double kMinParallelFlops = 4.0e6;

// ---- micro-kernels ----------------------------------------------------------
//
// C[mr×nr] += Ap·Bp over a kc-deep packed panel pair. Ap is p-major with
// MR-interleaved (alpha-scaled, zero-padded) rows; Bp is a kc×NR strip
// (zero-padded columns), so the hot loop is branch-free and every load is
// contiguous. The MR·NR accumulators live in registers; the guarded
// writeback touches only the live mr×nr corner of the tile.
//
// The body is stamped out at several geometries: a portable 4×4 whose 16
// accumulators fit the 16 SSE2 xmm registers every x86-64 CPU has, and
// AVX2+FMA 6×4 / 6×8 variants selected at runtime when the CPU supports
// them — vector width without -march flags, so one binary runs anywhere.

#define XS_GEMM_TILE_BODY(MR_, NR_)                                                 \
    double acc[(MR_) * (NR_)] = {};                                                 \
    for (std::size_t p = 0; p < kc; ++p) {                                          \
        const double* __restrict a = ap + p * (MR_);                                \
        const double* __restrict b = bp + p * bs;                                   \
        for (std::size_t r = 0; r < (MR_); ++r) {                                   \
            const double ar = a[r];                                                 \
            for (std::size_t j = 0; j < (NR_); ++j) acc[r * (NR_) + j] += ar * b[j];\
        }                                                                           \
    }                                                                               \
    for (std::size_t r = 0; r < mr; ++r) {                                          \
        double* __restrict crow = c + r * ldc;                                      \
        for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[r * (NR_) + j];         \
    }

void tile_portable_4x4(const double* __restrict ap, const double* __restrict bp, std::size_t bs,
                       std::size_t kc, double* __restrict c, std::size_t ldc, std::size_t mr,
                       std::size_t nr) {
    XS_GEMM_TILE_BODY(4, 4)
}

using TileFn = void (*)(const double* __restrict, const double* __restrict, std::size_t,
                        std::size_t, double* __restrict, std::size_t, std::size_t, std::size_t);

#if defined(__x86_64__) && defined(__GNUC__)
#define XS_GEMM_HAVE_AVX2_VARIANT 1

// The AVX2 tiles are written with intrinsics rather than the generic body:
// at 48 accumulators GCC's scalar replacement gives up and spills the
// accumulator array to the stack every iteration, which is slower than the
// portable kernel. Explicit ymm accumulators pin the tile in registers.

__attribute__((target("avx2,fma"))) void tile_avx2_6x4(const double* __restrict ap,
                                                       const double* __restrict bp, std::size_t bs,
                                                       std::size_t kc, double* __restrict c,
                                                       std::size_t ldc, std::size_t mr,
                                                       std::size_t nr) {
    __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd(), acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd(), acc4 = _mm256_setzero_pd(), acc5 = _mm256_setzero_pd();
    for (std::size_t p = 0; p < kc; ++p) {
        const double* a = ap + p * 6;
        const __m256d b = _mm256_loadu_pd(bp + p * bs);
        acc0 = _mm256_fmadd_pd(_mm256_broadcast_sd(a + 0), b, acc0);
        acc1 = _mm256_fmadd_pd(_mm256_broadcast_sd(a + 1), b, acc1);
        acc2 = _mm256_fmadd_pd(_mm256_broadcast_sd(a + 2), b, acc2);
        acc3 = _mm256_fmadd_pd(_mm256_broadcast_sd(a + 3), b, acc3);
        acc4 = _mm256_fmadd_pd(_mm256_broadcast_sd(a + 4), b, acc4);
        acc5 = _mm256_fmadd_pd(_mm256_broadcast_sd(a + 5), b, acc5);
    }
    double acc[6 * 4];
    _mm256_storeu_pd(acc + 0, acc0);
    _mm256_storeu_pd(acc + 4, acc1);
    _mm256_storeu_pd(acc + 8, acc2);
    _mm256_storeu_pd(acc + 12, acc3);
    _mm256_storeu_pd(acc + 16, acc4);
    _mm256_storeu_pd(acc + 20, acc5);
    for (std::size_t r = 0; r < mr; ++r) {
        double* __restrict crow = c + r * ldc;
        for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[r * 4 + j];
    }
}

__attribute__((target("avx2,fma"))) void tile_avx2_6x8(const double* __restrict ap,
                                                       const double* __restrict bp, std::size_t bs,
                                                       std::size_t kc, double* __restrict c,
                                                       std::size_t ldc, std::size_t mr,
                                                       std::size_t nr) {
    __m256d acc[12];
    for (auto& v : acc) v = _mm256_setzero_pd();
    for (std::size_t p = 0; p < kc; ++p) {
        const double* a = ap + p * 6;
        const __m256d b0 = _mm256_loadu_pd(bp + p * bs);
        const __m256d b1 = _mm256_loadu_pd(bp + p * bs + 4);
        const __m256d a0 = _mm256_broadcast_sd(a + 0);
        acc[0] = _mm256_fmadd_pd(a0, b0, acc[0]);
        acc[1] = _mm256_fmadd_pd(a0, b1, acc[1]);
        const __m256d a1 = _mm256_broadcast_sd(a + 1);
        acc[2] = _mm256_fmadd_pd(a1, b0, acc[2]);
        acc[3] = _mm256_fmadd_pd(a1, b1, acc[3]);
        const __m256d a2 = _mm256_broadcast_sd(a + 2);
        acc[4] = _mm256_fmadd_pd(a2, b0, acc[4]);
        acc[5] = _mm256_fmadd_pd(a2, b1, acc[5]);
        const __m256d a3 = _mm256_broadcast_sd(a + 3);
        acc[6] = _mm256_fmadd_pd(a3, b0, acc[6]);
        acc[7] = _mm256_fmadd_pd(a3, b1, acc[7]);
        const __m256d a4 = _mm256_broadcast_sd(a + 4);
        acc[8] = _mm256_fmadd_pd(a4, b0, acc[8]);
        acc[9] = _mm256_fmadd_pd(a4, b1, acc[9]);
        const __m256d a5 = _mm256_broadcast_sd(a + 5);
        acc[10] = _mm256_fmadd_pd(a5, b0, acc[10]);
        acc[11] = _mm256_fmadd_pd(a5, b1, acc[11]);
    }
    double out[6 * 8];
    for (std::size_t r = 0; r < 12; ++r) _mm256_storeu_pd(out + r * 4, acc[r]);
    for (std::size_t r = 0; r < mr; ++r) {
        double* __restrict crow = c + r * ldc;
        for (std::size_t j = 0; j < nr; ++j) crow[j] += out[r * 8 + j];
    }
}

// The AVX-512 tiles follow the same pattern one register width up: one
// 8-wide zmm load of the B strip per k-step, one broadcast-FMA per row.
// Per output element the FMA chain over p is identical to the AVX2 6×8
// tile's (each lane is an independent fused chain), so switching between
// the 8-row and 12-row geometry — or between the AVX2 and AVX-512 arms on
// NR=8 strips — never changes a result bit. The 12×8 tile holds 12
// accumulators plus loads in the 32 zmm registers and amortises each B
// strip load over half again as many rows as 8×8.

__attribute__((target("avx512f"))) void tile_avx512_8x8(const double* __restrict ap,
                                                        const double* __restrict bp, std::size_t bs,
                                                        std::size_t kc, double* __restrict c,
                                                        std::size_t ldc, std::size_t mr,
                                                        std::size_t nr) {
    __m512d acc[8];
    for (auto& v : acc) v = _mm512_setzero_pd();
    for (std::size_t p = 0; p < kc; ++p) {
        const double* a = ap + p * 8;
        const __m512d b = _mm512_loadu_pd(bp + p * bs);
        acc[0] = _mm512_fmadd_pd(_mm512_set1_pd(a[0]), b, acc[0]);
        acc[1] = _mm512_fmadd_pd(_mm512_set1_pd(a[1]), b, acc[1]);
        acc[2] = _mm512_fmadd_pd(_mm512_set1_pd(a[2]), b, acc[2]);
        acc[3] = _mm512_fmadd_pd(_mm512_set1_pd(a[3]), b, acc[3]);
        acc[4] = _mm512_fmadd_pd(_mm512_set1_pd(a[4]), b, acc[4]);
        acc[5] = _mm512_fmadd_pd(_mm512_set1_pd(a[5]), b, acc[5]);
        acc[6] = _mm512_fmadd_pd(_mm512_set1_pd(a[6]), b, acc[6]);
        acc[7] = _mm512_fmadd_pd(_mm512_set1_pd(a[7]), b, acc[7]);
    }
    double out[8 * 8];
    for (std::size_t r = 0; r < 8; ++r) _mm512_storeu_pd(out + r * 8, acc[r]);
    for (std::size_t r = 0; r < mr; ++r) {
        double* __restrict crow = c + r * ldc;
        for (std::size_t j = 0; j < nr; ++j) crow[j] += out[r * 8 + j];
    }
}

__attribute__((target("avx512f"))) void tile_avx512_12x8(const double* __restrict ap,
                                                         const double* __restrict bp,
                                                         std::size_t bs, std::size_t kc,
                                                         double* __restrict c, std::size_t ldc,
                                                         std::size_t mr, std::size_t nr) {
    __m512d acc[12];
    for (auto& v : acc) v = _mm512_setzero_pd();
    for (std::size_t p = 0; p < kc; ++p) {
        const double* a = ap + p * 12;
        const __m512d b = _mm512_loadu_pd(bp + p * bs);
        acc[0] = _mm512_fmadd_pd(_mm512_set1_pd(a[0]), b, acc[0]);
        acc[1] = _mm512_fmadd_pd(_mm512_set1_pd(a[1]), b, acc[1]);
        acc[2] = _mm512_fmadd_pd(_mm512_set1_pd(a[2]), b, acc[2]);
        acc[3] = _mm512_fmadd_pd(_mm512_set1_pd(a[3]), b, acc[3]);
        acc[4] = _mm512_fmadd_pd(_mm512_set1_pd(a[4]), b, acc[4]);
        acc[5] = _mm512_fmadd_pd(_mm512_set1_pd(a[5]), b, acc[5]);
        acc[6] = _mm512_fmadd_pd(_mm512_set1_pd(a[6]), b, acc[6]);
        acc[7] = _mm512_fmadd_pd(_mm512_set1_pd(a[7]), b, acc[7]);
        acc[8] = _mm512_fmadd_pd(_mm512_set1_pd(a[8]), b, acc[8]);
        acc[9] = _mm512_fmadd_pd(_mm512_set1_pd(a[9]), b, acc[9]);
        acc[10] = _mm512_fmadd_pd(_mm512_set1_pd(a[10]), b, acc[10]);
        acc[11] = _mm512_fmadd_pd(_mm512_set1_pd(a[11]), b, acc[11]);
    }
    double out[12 * 8];
    for (std::size_t r = 0; r < 12; ++r) _mm512_storeu_pd(out + r * 8, acc[r]);
    for (std::size_t r = 0; r < mr; ++r) {
        double* __restrict crow = c + r * ldc;
        for (std::size_t j = 0; j < nr; ++j) crow[j] += out[r * 8 + j];
    }
}

bool avx2_available() {
    static const bool available = [] {
        __builtin_cpu_init();
        return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    }();
    return available;
}

bool avx512_available() {
    static const bool available = [] {
        __builtin_cpu_init();
        return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
    }();
    return available;
}
#else
bool avx2_available() { return false; }
bool avx512_available() { return false; }
#endif

#undef XS_GEMM_TILE_BODY

/// The tile function plus the geometry it was compiled for.
struct KernelConfig {
    TileFn tile;
    std::size_t mr;
    std::size_t nr;
};

/// A set_kernel_variant() override; kVariantUnset defers to the
/// environment (read once, below), which defers to Auto.
constexpr int kVariantUnset = -1;
std::atomic<int> g_variant_override{kVariantUnset};

KernelVariant env_variant() {
    static const KernelVariant parsed = [] {
        const char* e = std::getenv("XBARSEC_FORCE_KERNEL");
        if (e == nullptr || *e == '\0') return KernelVariant::Auto;
        const KernelVariant v = parse_kernel_variant(e);
        if (!kernel_variant_available(v)) {
            throw ConfigError(std::string("XBARSEC_FORCE_KERNEL=") + e +
                              ": this CPU does not support that kernel variant");
        }
        return v;
    }();
    return parsed;
}

KernelConfig pick_avx2(std::size_t n);
KernelConfig pick_avx512(std::size_t m);

/// Picks the register tile for one product. Auto takes the widest arm the
/// CPU supports, with narrower-NR geometry for skinny outputs (the paper's
/// 10-class heads) where a wide strip would waste most of its lanes on
/// padding; a forced variant stays inside its own arm at every shape.
///
/// The choice between same-arm geometries depends on m only through the
/// row count a tile covers — never through the per-row accumulation chain —
/// so gemm_rowstable's partition invariance survives the m-dependent pick.
KernelConfig pick_kernel(std::size_t m, std::size_t n) {
    switch (forced_kernel_variant()) {
        case KernelVariant::Portable:
            return {tile_portable_4x4, 4, 4};
#ifdef XS_GEMM_HAVE_AVX2_VARIANT
        case KernelVariant::Avx2:
            return pick_avx2(n);
        case KernelVariant::Avx512:
            return pick_avx512(m);
#endif
        default:
            break;
    }
#ifdef XS_GEMM_HAVE_AVX2_VARIANT
    // The 8-wide AVX-512 strips only pay for themselves when the output
    // fills them (n ≥ 12, the same threshold as the AVX2 narrow/wide
    // split) — at the paper's 10-class heads a 16-lane strip pair is 62%
    // padding and the AVX2 6×4 tile measures ~15% faster for minibatch
    // row counts. Tall outputs are the exception: with m ≥ 64 the 12-row
    // tile amortises each padded strip load over twice the rows and wins
    // ~20% even at n = 10 (the transpose-swapped gradient GEMMs).
    if (avx512_available() && (n >= 12 || (n >= 8 && m >= 64))) return pick_avx512(m);
    if (avx2_available()) return pick_avx2(n);
#endif
    (void)m;
    (void)n;
    return {tile_portable_4x4, 4, 4};
}

#ifdef XS_GEMM_HAVE_AVX2_VARIANT
KernelConfig pick_avx2(std::size_t n) {
    if (n >= 12) return {tile_avx2_6x8, 6, 8};
    return {tile_avx2_6x4, 6, 4};
}

KernelConfig pick_avx512(std::size_t m) {
    if (m >= 12) return {tile_avx512_12x8, 12, 8};
    return {tile_avx512_8x8, 8, 8};
}
#endif

// ---- panel packing ----------------------------------------------------------

/// Packs rows [i0, i0+mr) of op(A)'s k-slice [k0, k1) into an alpha-scaled,
/// p-major, MR-interleaved micro-panel. Rows beyond mr pad with zeros so
/// the micro-kernel never branches on the row count.
void pack_a(const Matrix& A, Op op, double alpha, std::size_t i0, std::size_t mr, std::size_t MR,
            std::size_t k0, std::size_t k1, double* __restrict ap) {
    const std::size_t kc = k1 - k0;
    const std::size_t lda = A.cols();
    if (op == Op::None) {
        for (std::size_t r = 0; r < MR; ++r) {
            if (r < mr) {
                const double* __restrict src = A.data() + (i0 + r) * lda + k0;
                for (std::size_t p = 0; p < kc; ++p) ap[p * MR + r] = alpha * src[p];
            } else {
                for (std::size_t p = 0; p < kc; ++p) ap[p * MR + r] = 0.0;
            }
        }
    } else {
        // op(A)(i, p) = A(p, i): the stored k-rows are contiguous.
        if (mr == MR) {
            for (std::size_t p = 0; p < kc; ++p) {
                const double* __restrict src = A.data() + (k0 + p) * lda + i0;
                for (std::size_t r = 0; r < MR; ++r) ap[p * MR + r] = alpha * src[r];
            }
        } else {
            for (std::size_t p = 0; p < kc; ++p) {
                const double* __restrict src = A.data() + (k0 + p) * lda + i0;
                for (std::size_t r = 0; r < MR; ++r) {
                    ap[p * MR + r] = r < mr ? alpha * src[r] : 0.0;
                }
            }
        }
    }
}

/// Packs op(B)'s k-slice [k0, k1) into NR-wide strips (the tail strip is
/// zero-padded). Strip s holds op(B)(k0..k1, s·NR..s·NR+NR) p-major.
void pack_b(const Matrix& B, Op op, std::size_t n, std::size_t NR, std::size_t k0, std::size_t k1,
            double* __restrict bp) {
    const std::size_t kc = k1 - k0;
    const std::size_t strips = (n + NR - 1) / NR;
    const std::size_t ldb = B.cols();
    if (op == Op::None) {
        for (std::size_t s = 0; s < strips; ++s) {
            const std::size_t j0 = s * NR;
            const std::size_t w = std::min(NR, n - j0);
            double* __restrict dst = bp + s * kc * NR;
            for (std::size_t p = 0; p < kc; ++p) {
                const double* __restrict src = B.data() + (k0 + p) * ldb + j0;
                for (std::size_t j = 0; j < NR; ++j) dst[p * NR + j] = j < w ? src[j] : 0.0;
            }
        }
    } else {
        // op(B)(p, j) = B(j, p): the stored j-rows are contiguous in p.
        for (std::size_t s = 0; s < strips; ++s) {
            const std::size_t j0 = s * NR;
            double* __restrict dst = bp + s * kc * NR;
            for (std::size_t jj = 0; jj < NR; ++jj) {
                const std::size_t j = j0 + jj;
                if (j < n) {
                    const double* __restrict src = B.data() + j * ldb + k0;
                    for (std::size_t p = 0; p < kc; ++p) dst[p * NR + jj] = src[p];
                } else {
                    for (std::size_t p = 0; p < kc; ++p) dst[p * NR + jj] = 0.0;
                }
            }
        }
    }
}

/// Packs the single (ragged) strip of an untransposed B starting at column
/// j0 — the tail the direct-B path cannot read in place without running
/// past the row end.
void pack_b_strip(const Matrix& B, std::size_t n, std::size_t NR, std::size_t j0, std::size_t k0,
                  std::size_t k1, double* __restrict bp) {
    const std::size_t kc = k1 - k0;
    const std::size_t ldb = B.cols();
    const std::size_t w = n - j0;
    for (std::size_t p = 0; p < kc; ++p) {
        const double* __restrict src = B.data() + (k0 + p) * ldb + j0;
        for (std::size_t j = 0; j < NR; ++j) bp[p * NR + j] = j < w ? src[j] : 0.0;
    }
}

/// How the micro-kernel reads op(B)'s current k-block: either packed
/// strips (strip s at `packed + s·kc·nr`, row stride nr), or — when the
/// operand is untransposed and m is too small to amortise a full repack —
/// the rows of B itself (row stride ldb), with only the zero-padded tail
/// strip packed.
struct BView {
    const double* packed = nullptr;  ///< non-null ⇒ fully packed panel
    const double* direct = nullptr;  ///< B.data() + k0·ldb (direct mode)
    const double* tail = nullptr;    ///< packed tail strip (direct mode)
    std::size_t ldb = 0;
};

/// Runs the micro-kernel over C rows [row0, row1) against one B k-block.
/// Each worker packs its own A micro-panels (thread-local buffer); the B
/// panel is shared read-only.
void gemm_rows(const KernelConfig& cfg, double alpha, const Matrix& A, Op opA, const BView& bview,
               std::size_t n, std::size_t k0, std::size_t k1, std::size_t row0, std::size_t row1,
               Matrix& C) {
    const std::size_t kc = k1 - k0;
    const std::size_t strips = (n + cfg.nr - 1) / cfg.nr;
    const std::size_t ldc = C.cols();

    // The A micro-panel is per-worker scratch: each worker bumps its own
    // thread arena, and the Scope rewinds it on exit, so nested pooled
    // GEMMs interleave cleanly on one thread (LIFO) and never on two.
    Arena& arena = thread_arena();
    const Arena::Scope scratch(arena);
    double* const ap = arena.alloc<double>(cfg.mr * kc).data();

    for (std::size_t i = row0; i < row1; i += cfg.mr) {
        const std::size_t mr = std::min(cfg.mr, row1 - i);
        pack_a(A, opA, alpha, i, mr, cfg.mr, k0, k1, ap);
        for (std::size_t s = 0; s < strips; ++s) {
            const std::size_t j0 = s * cfg.nr;
            const double* bp;
            std::size_t bs;
            if (bview.packed != nullptr) {
                bp = bview.packed + s * kc * cfg.nr;
                bs = cfg.nr;
            } else if (j0 + cfg.nr <= n) {
                bp = bview.direct + j0;
                bs = bview.ldb;
            } else {
                bp = bview.tail;
                bs = cfg.nr;
            }
            cfg.tile(ap, bp, bs, kc, C.data() + i * ldc + j0, ldc, mr, std::min(cfg.nr, n - j0));
        }
    }
}

/// C += alpha·op(A)·op(B), shapes already validated, beta already applied.
void gemm_dispatch(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, Matrix& C,
                   std::size_t m, std::size_t n, std::size_t kA, ThreadPool* pool) {
    const KernelConfig cfg = pick_kernel(m, n);

    // Skip the full B repack when the operand is already row-major and m is
    // too small to amortise it (the 10-output gradient GEMMs): the tiles
    // read B's rows in place and only a ragged tail strip gets packed.
    const bool direct_b = opB == Op::None && m <= 8 * cfg.mr;

    // The B panel comes off the dispatching thread's arena and is shared
    // read-only with the workers; it outlives every parallel_for below and
    // is reclaimed by the Scope when the product completes.
    Arena& arena = thread_arena();
    const Arena::Scope scratch(arena);
    const std::size_t strips = (n + cfg.nr - 1) / cfg.nr;
    const std::size_t kc_max = std::min(kBlockK, kA);
    const std::size_t panel_doubles =
        direct_b ? kc_max * cfg.nr : strips * kc_max * cfg.nr;
    const std::span<double> bpanel = arena.alloc<double>(panel_doubles);

    const bool shard = pool != nullptr && m > kRowsPerPanel &&
                       2.0 * static_cast<double>(m) * static_cast<double>(n) *
                               static_cast<double>(kA) >=
                           kMinParallelFlops;
    for (std::size_t k0 = 0; k0 < kA; k0 += kBlockK) {
        const std::size_t k1 = std::min(k0 + kBlockK, kA);
        BView bview;
        if (direct_b) {
            bview.direct = B.data() + k0 * B.cols();
            bview.ldb = B.cols();
            if (n % cfg.nr != 0) {
                const std::size_t tail_j0 = (n / cfg.nr) * cfg.nr;
                pack_b_strip(B, n, cfg.nr, tail_j0, k0, k1, bpanel.data());
                bview.tail = bpanel.data();
            }
        } else {
            pack_b(B, opB, n, cfg.nr, k0, k1, bpanel.data());
            bview.packed = bpanel.data();
        }
        if (shard) {
            const std::size_t panels = (m + kRowsPerPanel - 1) / kRowsPerPanel;
            parallel_for(*pool, panels, [&](std::size_t t) {
                const std::size_t r0 = t * kRowsPerPanel;
                gemm_rows(cfg, alpha, A, opA, bview, n, k0, k1, r0,
                          std::min(r0 + kRowsPerPanel, m), C);
            });
        } else {
            gemm_rows(cfg, alpha, A, opA, bview, n, k0, k1, 0, m, C);
        }
    }
}

}  // namespace

void set_kernel_variant(KernelVariant v) {
    if (!kernel_variant_available(v)) {
        throw ConfigError(std::string("set_kernel_variant(") + to_string(v) +
                          "): this CPU does not support that kernel variant");
    }
    g_variant_override.store(static_cast<int>(v), std::memory_order_relaxed);
}

KernelVariant forced_kernel_variant() {
    const int forced = g_variant_override.load(std::memory_order_relaxed);
    if (forced != kVariantUnset) return static_cast<KernelVariant>(forced);
    return env_variant();
}

bool kernel_variant_available(KernelVariant v) {
    switch (v) {
        case KernelVariant::Avx2:
            return avx2_available();
        case KernelVariant::Avx512:
            return avx512_available();
        case KernelVariant::Auto:
        case KernelVariant::Portable:
            return true;
    }
    return false;
}

const char* to_string(KernelVariant v) {
    switch (v) {
        case KernelVariant::Auto:
            return "auto";
        case KernelVariant::Portable:
            return "portable";
        case KernelVariant::Avx2:
            return "avx2";
        case KernelVariant::Avx512:
            return "avx512";
    }
    return "?";
}

KernelVariant parse_kernel_variant(const std::string& name) {
    if (name == "auto") return KernelVariant::Auto;
    if (name == "portable") return KernelVariant::Portable;
    if (name == "avx2") return KernelVariant::Avx2;
    if (name == "avx512") return KernelVariant::Avx512;
    throw ConfigError("unknown kernel variant \"" + name +
                      "\" (expected auto | portable | avx2 | avx512)");
}

static void gemm_impl(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, double beta,
                      Matrix& C, ThreadPool* pool, bool allow_swap) {
    const std::size_t m = opA == Op::None ? A.rows() : A.cols();
    const std::size_t kA = opA == Op::None ? A.cols() : A.rows();
    const std::size_t kB = opB == Op::None ? B.rows() : B.cols();
    const std::size_t n = opB == Op::None ? B.cols() : B.rows();
    XS_EXPECTS_MSG(kA == kB, "gemm inner dimensions disagree");
    XS_EXPECTS_MSG(C.rows() == m && C.cols() == n, "gemm output shape mismatch");
    XS_EXPECTS_MSG(C.data() != A.data() && C.data() != B.data(), "gemm output aliases an input");

    if (beta == 0.0) {
        C.fill(0.0);
    } else if (beta != 1.0) {
        C *= beta;
    }
    if (alpha == 0.0 || m == 0 || n == 0 || kA == 0) return;

    // Wide-and-flat products (the 10-output weight-gradient GEMMs) are
    // packing-bound: the kc×n panel repack costs more than the arithmetic
    // its few row blocks amortise. Computing the transpose instead puts
    // the long dimension on the A side — micro-panels that are packed
    // once, used, and discarded — and makes the small operand the packed
    // panel that every row block reuses. The extra transpose-add touches
    // only m·n elements.
    if (allow_swap && m <= 12 && n >= 64 && n >= 4 * m) {
        Matrix ct(n, m, 0.0);
        const Op opAt = opB == Op::None ? Op::Transpose : Op::None;
        const Op opBt = opA == Op::None ? Op::Transpose : Op::None;
        gemm_dispatch(alpha, B, opAt, A, opBt, ct, n, m, kA, pool);
        for (std::size_t i = 0; i < m; ++i) {
            double* __restrict crow = C.data() + i * n;
            const double* __restrict src = ct.data() + i;
            for (std::size_t j = 0; j < n; ++j) crow[j] += src[j * m];
        }
        return;
    }

    gemm_dispatch(alpha, A, opA, B, opB, C, m, n, kA, pool);
}

void gemm(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, double beta, Matrix& C,
          ThreadPool* pool) {
    gemm_impl(alpha, A, opA, B, opB, beta, C, pool, /*allow_swap=*/true);
}

void gemm_rowstable(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, double beta,
                    Matrix& C, ThreadPool* pool) {
    // Same kernel, minus the wide-and-flat transpose-swap heuristic: the
    // swap reorders the accumulation of every C element, and whether it
    // fires depends on m — so a caller that chops its row batch into
    // sub-batches could change results bitwise. With the swap disabled,
    // each C row's accumulation chain depends only on (k, n) and row
    // content, never on m or the pool partition (pinned by test_gemm).
    gemm_impl(alpha, A, opA, B, opB, beta, C, pool, /*allow_swap=*/false);
}

Matrix matmul(const Matrix& A, const Matrix& B) { return matmul(A, Op::None, B, Op::None); }

Matrix matmul(const Matrix& A, Op opA, const Matrix& B, Op opB) {
    const std::size_t m = opA == Op::None ? A.rows() : A.cols();
    const std::size_t n = opB == Op::None ? B.cols() : B.rows();
    Matrix C(m, n, 0.0);
    gemm(1.0, A, opA, B, opB, 0.0, C);
    return C;
}

}  // namespace xbarsec::tensor
