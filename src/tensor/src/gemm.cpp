#include "xbarsec/tensor/gemm.hpp"

#include <algorithm>

namespace xbarsec::tensor {

namespace {

// Cache-block sizes chosen for ~32 KiB L1 / 512 KiB L2; not tuned per-CPU,
// just enough to keep the working set resident.
constexpr std::size_t kBlockI = 64;
constexpr std::size_t kBlockK = 256;

// Core kernel: C[m×n] (+)= alpha * A'[m×k] · B'[k×n], where A' and B' are
// materialized row-major operands (transposes are packed up front; the
// matrices in this library are small enough that packing costs are noise).
void gemm_nn(double alpha, const Matrix& A, const Matrix& B, Matrix& C) {
    const std::size_t m = A.rows(), k = A.cols(), n = B.cols();
    for (std::size_t i0 = 0; i0 < m; i0 += kBlockI) {
        const std::size_t i1 = std::min(i0 + kBlockI, m);
        for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
            const std::size_t k1 = std::min(k0 + kBlockK, k);
            for (std::size_t i = i0; i < i1; ++i) {
                const double* arow = A.data() + i * k;
                double* crow = C.data() + i * n;
                for (std::size_t p = k0; p < k1; ++p) {
                    const double aip = alpha * arow[p];
                    if (aip == 0.0) continue;
                    const double* brow = B.data() + p * n;
                    for (std::size_t j = 0; j < n; ++j) crow[j] += aip * brow[j];
                }
            }
        }
    }
}

}  // namespace

void gemm(double alpha, const Matrix& A, Op opA, const Matrix& B, Op opB, double beta, Matrix& C) {
    const std::size_t m = opA == Op::None ? A.rows() : A.cols();
    const std::size_t kA = opA == Op::None ? A.cols() : A.rows();
    const std::size_t kB = opB == Op::None ? B.rows() : B.cols();
    const std::size_t n = opB == Op::None ? B.cols() : B.rows();
    XS_EXPECTS_MSG(kA == kB, "gemm inner dimensions disagree");
    XS_EXPECTS_MSG(C.rows() == m && C.cols() == n, "gemm output shape mismatch");
    XS_EXPECTS_MSG(C.data() != A.data() && C.data() != B.data(), "gemm output aliases an input");

    if (beta == 0.0) {
        C.fill(0.0);
    } else if (beta != 1.0) {
        C *= beta;
    }
    if (alpha == 0.0 || m == 0 || n == 0 || kA == 0) return;

    // Pack transposed operands once; all inner loops then run row-major.
    if (opA == Op::None && opB == Op::None) {
        gemm_nn(alpha, A, B, C);
    } else if (opA == Op::Transpose && opB == Op::None) {
        gemm_nn(alpha, A.transposed(), B, C);
    } else if (opA == Op::None && opB == Op::Transpose) {
        gemm_nn(alpha, A, B.transposed(), C);
    } else {
        gemm_nn(alpha, A.transposed(), B.transposed(), C);
    }
}

Matrix matmul(const Matrix& A, const Matrix& B) { return matmul(A, Op::None, B, Op::None); }

Matrix matmul(const Matrix& A, Op opA, const Matrix& B, Op opB) {
    const std::size_t m = opA == Op::None ? A.rows() : A.cols();
    const std::size_t n = opB == Op::None ? B.cols() : B.rows();
    Matrix C(m, n, 0.0);
    gemm(1.0, A, opA, B, opB, 0.0, C);
    return C;
}

}  // namespace xbarsec::tensor
