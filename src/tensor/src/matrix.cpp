#include "xbarsec/tensor/matrix.hpp"

#include <algorithm>

namespace xbarsec::tensor {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : init) {
        XS_EXPECTS_MSG(r.size() == cols_, "ragged initializer list");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::random_uniform(Rng& rng, std::size_t rows, std::size_t cols, double lo, double hi) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = rng.uniform(lo, hi);
    return m;
}

Matrix Matrix::random_normal(Rng& rng, std::size_t rows, std::size_t cols, double mean,
                             double stddev) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = rng.normal(mean, stddev);
    return m;
}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
    if (rows.empty()) return {};
    const std::size_t cols = rows.front().size();
    Matrix m(rows.size(), cols);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        XS_EXPECTS_MSG(rows[i].size() == cols, "ragged row list");
        std::copy(rows[i].begin(), rows[i].end(), m.data_.begin() + static_cast<std::ptrdiff_t>(i * cols));
    }
    return m;
}

Vector Matrix::row(std::size_t i) const {
    XS_EXPECTS(i < rows_);
    Vector v(cols_);
    const auto src = row_span(i);
    std::copy(src.begin(), src.end(), v.begin());
    return v;
}

Vector Matrix::col(std::size_t j) const {
    XS_EXPECTS(j < cols_);
    Vector v(rows_);
    for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
    return v;
}

void Matrix::set_row(std::size_t i, const Vector& v) {
    XS_EXPECTS(i < rows_ && v.size() == cols_);
    std::copy(v.begin(), v.end(), data_.begin() + static_cast<std::ptrdiff_t>(i * cols_));
}

void Matrix::set_col(std::size_t j, const Vector& v) {
    XS_EXPECTS(j < cols_ && v.size() == rows_);
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
}

Matrix Matrix::reshaped(std::size_t rows, std::size_t cols) const {
    XS_EXPECTS(rows * cols == data_.size());
    Matrix out(rows, cols);
    out.data_ = data_;
    return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
    XS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
    XS_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(double s) {
    for (auto& x : data_) x *= s;
    return *this;
}

void Matrix::fill(double value) {
    std::fill(data_.begin(), data_.end(), value);
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

}  // namespace xbarsec::tensor
