// NVM device model.
//
// A crossbar cell is a two-terminal non-volatile resistive device (ReRAM,
// PCM, ferroelectric, ... — the paper is technology-agnostic) whose
// conductance is programmed between an off/leak state g_off and a maximum
// on-state g_on_max. DeviceSpec captures the programming-relevant device
// parameters; per-measurement effects live in NonIdealityConfig
// (crossbar.hpp).
#pragma once

#include <cstdint>

namespace xbarsec::xbar {

/// Programming-time characteristics of one NVM device.
struct DeviceSpec {
    /// Maximum programmable conductance (siemens). Defaults are in the
    /// range typical of ReRAM (tens of µS).
    double g_on_max = 100e-6;

    /// Conductance of an unselected/"off" device (siemens). The paper's
    /// ideal analysis assumes 0 (G⁻ ≈ 0 for positive weights); real
    /// devices have a finite on/off ratio, which turns the 1-norm leak
    /// into an affine function of the 1-norm — rank-preserving, see
    /// sidechannel::PowerProbe.
    double g_off = 0.0;

    /// Relative std-dev of multiplicative programming (write) noise:
    /// g ← g·(1 + ε), ε ~ N(0, σ²), clamped to [g_off, g_on_max].
    double write_noise_std = 0.0;

    /// Number of discrete programmable levels between g_off and g_on_max
    /// (inclusive). 0 or 1 means continuous (ideal analog programming).
    int conductance_levels = 0;

    /// Throws ConfigError when parameters are inconsistent.
    void validate() const;
};

/// Quantises g onto the device's discrete level grid (identity when the
/// spec is continuous). g must lie in [g_off, g_on_max].
double quantize_conductance(const DeviceSpec& spec, double g);

}  // namespace xbarsec::xbar
