// Crossbar-backed single-layer neural network.
//
// Wraps a trained SingleLayerNet in a simulated crossbar: inference runs
// through the analog array (Eq. 3 → normalise → activation, i.e. Eq. 4)
// and every inference also exposes the power side channel (Eq. 5). This
// is the "victim hardware" object that core::CrossbarOracle wraps for the
// attacker-facing query interface.
#pragma once

#include <vector>

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/network.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace xbarsec::xbar {

/// A single-layer network deployed onto a simulated NVM crossbar.
class CrossbarNetwork {
public:
    /// Programs `net`'s weights onto a crossbar with the given device
    /// spec and non-idealities. The activation/loss metadata of `net` is
    /// retained for inference and attack computations.
    CrossbarNetwork(const nn::SingleLayerNet& net, const DeviceSpec& spec,
                    const NonIdealityConfig& nonideal = {}, const MappingOptions& mapping = {});

    std::size_t inputs() const { return crossbar_.cols(); }
    std::size_t outputs() const { return crossbar_.rows(); }
    nn::Activation activation() const { return activation_; }
    nn::Loss loss_kind() const { return loss_; }

    const Crossbar& crossbar() const { return crossbar_; }

    /// Analog inference: ŷ = f(i_s / scale) (Eq. 3 + Eq. 4).
    tensor::Vector predict(const tensor::Vector& u) const;

    /// Argmax class of predict(u).
    int classify(const tensor::Vector& u) const;

    /// Batched analog inference: row r is predict(U.row(r)), computed
    /// through the crossbar's dense GEMM fast path.
    tensor::Matrix predict_batch(const tensor::Matrix& U, ThreadPool* pool = nullptr) const;

    /// Batched classification: out[r] = classify(U.row(r)).
    std::vector<int> classify_batch(const tensor::Matrix& U, ThreadPool* pool = nullptr) const;

    /// The power side channel for input u (Eq. 5).
    double total_current(const tensor::Vector& u) const { return crossbar_.total_current(u); }

    /// Batched power side channel: out[r] = total_current(U.row(r)).
    tensor::Vector total_current_batch(const tensor::Matrix& U, ThreadPool* pool = nullptr) const {
        return crossbar_.total_current_batch(U, pool);
    }

    /// Static power for input u.
    double static_power(const tensor::Vector& u) const { return crossbar_.static_power(u); }

    /// The software network this crossbar was programmed from, with the
    /// *effective* (noisy/quantised/faulted) weights it actually realises.
    nn::SingleLayerNet effective_network() const;

    /// Classification accuracy through the analog path.
    double accuracy(const data::Dataset& dataset) const;

private:
    Crossbar crossbar_;
    nn::Activation activation_;
    nn::Loss loss_;
};

}  // namespace xbarsec::xbar
