// Multi-layer crossbar deployment — the paper's stated future work.
//
// Each dense layer of an Mlp gets its own crossbar array; inference
// cascades analog MVM → activation per layer (biases are not supported —
// passive arrays compute pure products). Every layer exposes its own
// power side channel, so the library's probes and attacks can study what
// the per-layer 1-norm leaks reveal about a deep model (see
// examples/multilayer_extension and the conclusions of the paper).
#pragma once

#include <vector>

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/mlp.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace xbarsec::xbar {

/// An Mlp deployed across one crossbar per layer.
class MultiLayerCrossbarNetwork {
public:
    /// Programs each layer's weights onto its own array. The Mlp must be
    /// bias-free (construct it with MlpConfig::with_bias = false).
    MultiLayerCrossbarNetwork(const nn::Mlp& mlp, const DeviceSpec& spec,
                              const NonIdealityConfig& nonideal = {});

    std::size_t depth() const { return layers_.size(); }
    std::size_t inputs() const { return layers_.front().cols(); }
    std::size_t outputs() const { return layers_.back().rows(); }

    const Crossbar& layer(std::size_t l) const;

    /// Cascaded analog inference: ŷ through every array + activation.
    tensor::Vector predict(const tensor::Vector& u) const;

    /// Argmax class of predict(u).
    int classify(const tensor::Vector& u) const;

    /// The power side channel of layer l for the layer-l input it sees
    /// when the network input is u. Layer 0's channel is what an external
    /// attacker measures directly; deeper channels assume knowledge of the
    /// hidden activations and are exposed for white-box analysis.
    double layer_total_current(std::size_t l, const tensor::Vector& u) const;

    /// Classification accuracy through the analog path.
    double accuracy(const data::Dataset& dataset) const;

private:
    /// Activations entering layer l for network input u.
    tensor::Vector input_to_layer(std::size_t l, const tensor::Vector& u) const;

    std::vector<Crossbar> layers_;
    nn::MlpConfig config_;
};

}  // namespace xbarsec::xbar
