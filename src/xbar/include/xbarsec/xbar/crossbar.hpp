// Crossbar array simulator (Section II-B, Eq. 3 and Eq. 5).
//
// Given a programmed CrossbarProgram, the simulator produces:
//   * the output current vector  i_s = (G⁺ − G⁻)·v        (Eq. 3)
//   * the total supply current   i_total = Σ_j v_j·G_j    (Eq. 5)
//   * the static dissipated power Σ_j v_j²·G_j (outputs at virtual ground)
// with optional measurement-time non-idealities: relative read noise,
// stuck-at device faults (applied to the program at construction), and a
// first-order interconnect IR-drop attenuation.
//
// Every configuration — including line resistance — runs on the dense
// batched path. The first-order IR-drop model keeps each cell linear in
// its drive voltage (i = g·v/(1 + r_wire·g) = a·v), so the per-cell
// attenuation is folded into the programmed-conductance caches once at
// construction and batched inference stays one GEMM. Read noise is a
// counter-based stream, Rng::normal_at(seed, measurement, element): a pure
// function of its coordinates, with no serial generator state. That is
// what lets batches shard across a ThreadPool — or be split into
// sub-batches — and still reproduce the same stream bit for bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/vector.hpp"
#include "xbarsec/xbar/mapping.hpp"

namespace xbarsec::xbar {

/// Measurement-time and fabric non-idealities. All default to the paper's
/// ideal assumptions.
struct NonIdealityConfig {
    /// Relative std-dev of Gaussian noise applied to every measured
    /// current (output currents and the total current independently).
    double read_noise_std = 0.0;

    /// Fractions of devices stuck at g_on_max / g_off (applied once to
    /// the programmed arrays, chosen by `seed`).
    double stuck_on_fraction = 0.0;
    double stuck_off_fraction = 0.0;

    /// Interconnect resistance per cell segment (ohms). 0 disables the
    /// IR-drop model. The first-order model attenuates each cell's
    /// current by 1/(1 + r_line·(i + j + 2)·g_cell): cells electrically
    /// farther from the drivers/sense amps lose more drive.
    double line_resistance = 0.0;

    /// Seed for fault placement and the read-noise stream.
    std::uint64_t seed = 0xBADC0FFEE0DDF00Dull;

    void validate() const;

    bool ideal() const {
        return read_noise_std == 0.0 && stuck_on_fraction == 0.0 && stuck_off_fraction == 0.0 &&
               line_resistance == 0.0;
    }
};

/// Joint current/power reading of one inference.
struct PowerReading {
    double total_current = 0.0;  ///< amperes (Eq. 5)
    double power = 0.0;          ///< watts (Σ v²G, outputs at virtual ground)
};

/// Simulated M×N crossbar.
///
/// Measurement methods are const but advance an internal measurement
/// counter — with read noise enabled, repeated measurements of the same
/// input differ, as on real hardware. The noise value of measurement m,
/// element e is Rng::normal_at(seed, m, e): a batch of B measurements
/// reserves counters [m, m+B) for its rows, so
///   * a batched read equals the same B per-vector reads issued in order,
///   * splitting a batch into sub-batches (processed in order) reproduces
///     the unsplit outputs bit for bit, and
///   * the ThreadPool partition never changes any output bit
/// (all three are pinned by tests/test_nonideal_determinism.cpp). This
/// counter-based contract intentionally replaced the pre-PR-3 serial draw
/// order: seeds produce different noise streams than they did then.
class Crossbar {
public:
    /// Takes ownership of the program; applies stuck faults immediately.
    Crossbar(CrossbarProgram program, NonIdealityConfig nonideal = {});

    // The atomic measurement counter deletes the implicit copy/move
    // special members; these preserve its value (a copy continues the
    // source's noise stream position at the moment of the copy).
    Crossbar(const Crossbar& other)
        : program_(other.program_),
          nonideal_(other.nonideal_),
          g_diff_(other.g_diff_),
          g_diff_t_(other.g_diff_t_),
          g_col_(other.g_col_),
          measurements_(other.measurement_count()) {}
    Crossbar(Crossbar&& other) noexcept
        : program_(std::move(other.program_)),
          nonideal_(other.nonideal_),
          g_diff_(std::move(other.g_diff_)),
          g_diff_t_(std::move(other.g_diff_t_)),
          g_col_(std::move(other.g_col_)),
          measurements_(other.measurement_count()) {}
    Crossbar& operator=(const Crossbar& other) {
        if (this != &other) *this = Crossbar(other);
        return *this;
    }
    Crossbar& operator=(Crossbar&& other) noexcept {
        program_ = std::move(other.program_);
        nonideal_ = other.nonideal_;
        g_diff_ = std::move(other.g_diff_);
        g_diff_t_ = std::move(other.g_diff_t_);
        g_col_ = std::move(other.g_col_);
        measurements_.store(other.measurement_count(), std::memory_order_relaxed);
        return *this;
    }

    std::size_t rows() const { return program_.rows(); }
    std::size_t cols() const { return program_.cols(); }
    const CrossbarProgram& program() const { return program_; }
    const NonIdealityConfig& nonideality() const { return nonideal_; }

    /// Output currents i_s for input voltages v (Eq. 3), amperes.
    /// Runs as a one-row batch so the result is bit-identical to the
    /// corresponding row of any output_currents_batch call.
    tensor::Vector output_currents(const tensor::Vector& v) const;

    /// Normalised matrix-vector product: output_currents / weight_scale,
    /// i.e. Ŵ·v in weight units (Eq. 4's s vector).
    tensor::Vector mvm(const tensor::Vector& v) const;

    /// Total steady-state supply current (Eq. 5), amperes.
    double total_current(const tensor::Vector& v) const;

    /// Batched inference: row r of the result is output_currents(V.row(r)).
    /// One dense GEMM against the cached (IR-drop-attenuated) differential
    /// conductance matrix for every configuration — there is no per-vector
    /// fallback. The kernel layer blocks the product into cache-resident
    /// tiles and optionally shards row panels over `pool`; read noise is a
    /// per-element counter stream, so neither the partition nor a batch
    /// split changes any bit of the result.
    tensor::Matrix output_currents_batch(const tensor::Matrix& V, ThreadPool* pool = nullptr) const;

    /// output_currents_batch / weight_scale: row r is Ŵ·V.row(r).
    tensor::Matrix mvm_batch(const tensor::Matrix& V, ThreadPool* pool = nullptr) const;

    /// Batched Eq. 5: out[r] = total_current(V.row(r)). Each reading is a
    /// single dot against the cached attenuated per-column conductance
    /// sums — O(N) per query instead of O(M·N) — using the same
    /// accumulation chain for every row regardless of pool or batch split.
    tensor::Vector total_current_batch(const tensor::Matrix& V, ThreadPool* pool = nullptr) const;

    /// Per-input-line supply currents: out[j] = v_j·G_j (amperes), the
    /// current each input driver sources. Tile-level current sensing (the
    /// DetectX instrumentation model) observes exactly these; they sum to
    /// total_current(v).
    tensor::Vector input_line_currents(const tensor::Vector& v) const;

    /// Static power with outputs at virtual ground: Σ_j v_j²·G_j, watts.
    double static_power(const tensor::Vector& v) const;

    /// total_current + static_power in one measurement (shares the noise
    /// draw pattern of separate calls).
    PowerReading read_power(const tensor::Vector& v) const;

    /// Ground-truth per-column conductance sums G_j (no noise, no IR
    /// drop) — for tests and for computing probe estimation error.
    tensor::Vector column_conductances() const { return column_conductance_sums(program_); }

    /// Ground-truth effective weight matrix (no read noise).
    tensor::Matrix effective_weights() const { return xbar::effective_weights(program_); }

    /// Number of current measurements taken so far (each output-current
    /// vector read or total-current read counts as one). Also the base of
    /// the read-noise counter stream.
    std::uint64_t measurement_count() const {
        return measurements_.load(std::memory_order_relaxed);
    }

    // ---- reference implementations -----------------------------------------
    //
    // The faithful per-cell simulation the vectorized paths replaced:
    // nested loops over every (i, j) device evaluating the IR-drop divider
    // directly. They consume measurement counters exactly like the fast
    // paths, so a fresh crossbar driven through these reproduces the fast
    // paths' noise coordinates. Retained as the ground truth for the
    // equivalence suite (tests/test_nonideal_equivalence.cpp) and as the
    // per-vector fallback baseline the benches measure speedups against —
    // not for production use.

    /// Per-cell reference for output_currents().
    tensor::Vector output_currents_reference(const tensor::Vector& v) const;

    /// Per-cell reference for total_current().
    double total_current_reference(const tensor::Vector& v) const;

    /// Per-cell reference for static_power().
    double static_power_reference(const tensor::Vector& v) const;

private:
    void apply_stuck_faults(Rng& rng);
    void build_caches();
    double cell_current(std::size_t i, std::size_t j, double g, double v) const;

    /// Multiplicative read-noise factor of measurement `meas`, element
    /// `idx` — 1.0 when noise is disabled.
    double noise_factor(std::uint64_t meas, std::uint64_t idx) const;

    /// Reserves `n` measurement counters and returns the first.
    std::uint64_t reserve_measurements(std::uint64_t n) const;

    CrossbarProgram program_;
    NonIdealityConfig nonideal_;
    /// Post-fault, post-attenuation caches for the batched paths: with
    /// a±(i,j) = g±/(1 + r_line·(i+j+2)·g±) (= g± when r_line is 0),
    /// g_diff_ = A⁺ − A⁻ (and its transpose, the GEMM operand — batched
    /// inference is V·(A⁺−A⁻)ᵀ) and g_col_[j] = Σ_i (A⁺+A⁻)(i,j), the
    /// attenuated Eq. 5 column sums.
    tensor::Matrix g_diff_;
    tensor::Matrix g_diff_t_;
    tensor::Vector g_col_;
    /// Atomic: concurrent callers (OracleService flushes, pool workers
    /// hammering one stack) must each reserve a disjoint counter range —
    /// a torn read-modify-write would hand two measurements the same
    /// noise coordinates.
    mutable std::atomic<std::uint64_t> measurements_{0};
};

}  // namespace xbarsec::xbar
