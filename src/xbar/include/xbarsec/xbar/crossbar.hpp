// Crossbar array simulator (Section II-B, Eq. 3 and Eq. 5).
//
// Given a programmed CrossbarProgram, the simulator produces:
//   * the output current vector  i_s = (G⁺ − G⁻)·v        (Eq. 3)
//   * the total supply current   i_total = Σ_j v_j·G_j    (Eq. 5)
//   * the static dissipated power Σ_j v_j²·G_j (outputs at virtual ground)
// with optional measurement-time non-idealities: relative read noise,
// stuck-at device faults (applied to the program at construction), and a
// first-order interconnect IR-drop attenuation.
#pragma once

#include <cstdint>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/common/threadpool.hpp"
#include "xbarsec/tensor/vector.hpp"
#include "xbarsec/xbar/mapping.hpp"

namespace xbarsec::xbar {

/// Measurement-time and fabric non-idealities. All default to the paper's
/// ideal assumptions.
struct NonIdealityConfig {
    /// Relative std-dev of Gaussian noise applied to every measured
    /// current (output currents and the total current independently).
    double read_noise_std = 0.0;

    /// Fractions of devices stuck at g_on_max / g_off (applied once to
    /// the programmed arrays, chosen by `seed`).
    double stuck_on_fraction = 0.0;
    double stuck_off_fraction = 0.0;

    /// Interconnect resistance per cell segment (ohms). 0 disables the
    /// IR-drop model. The first-order model attenuates each cell's
    /// current by 1/(1 + r_line·(i + j + 2)·g_cell): cells electrically
    /// farther from the drivers/sense amps lose more drive.
    double line_resistance = 0.0;

    /// Seed for fault placement and the read-noise stream.
    std::uint64_t seed = 0xBADC0FFEE0DDF00Dull;

    void validate() const;

    bool ideal() const {
        return read_noise_std == 0.0 && stuck_on_fraction == 0.0 && stuck_off_fraction == 0.0 &&
               line_resistance == 0.0;
    }
};

/// Joint current/power reading of one inference.
struct PowerReading {
    double total_current = 0.0;  ///< amperes (Eq. 5)
    double power = 0.0;          ///< watts (Σ v²G, outputs at virtual ground)
};

/// Simulated M×N crossbar. Measurement methods are const but advance an
/// internal noise stream (mutable Rng) when read noise is enabled —
/// repeated measurements of the same input differ, as on real hardware.
class Crossbar {
public:
    /// Takes ownership of the program; applies stuck faults immediately.
    Crossbar(CrossbarProgram program, NonIdealityConfig nonideal = {});

    std::size_t rows() const { return program_.rows(); }
    std::size_t cols() const { return program_.cols(); }
    const CrossbarProgram& program() const { return program_; }
    const NonIdealityConfig& nonideality() const { return nonideal_; }

    /// Output currents i_s for input voltages v (Eq. 3), amperes.
    tensor::Vector output_currents(const tensor::Vector& v) const;

    /// Normalised matrix-vector product: output_currents / weight_scale,
    /// i.e. Ŵ·v in weight units (Eq. 4's s vector).
    tensor::Vector mvm(const tensor::Vector& v) const;

    /// Total steady-state supply current (Eq. 5), amperes.
    double total_current(const tensor::Vector& v) const;

    /// Batched inference: row r of the result is output_currents(V.row(r)).
    /// Without IR drop the arithmetic runs as one dense GEMM against the
    /// cached differential conductance matrix; the kernel layer blocks the
    /// product into cache-resident tiles and optionally shards row panels
    /// over `pool` (the partition does not change the result). Read noise,
    /// when enabled, is drawn serially in the same element order as the
    /// per-vector calls, so batched and scalar measurements consume the
    /// same noise stream.
    tensor::Matrix output_currents_batch(const tensor::Matrix& V, ThreadPool* pool = nullptr) const;

    /// output_currents_batch / weight_scale: row r is Ŵ·V.row(r).
    tensor::Matrix mvm_batch(const tensor::Matrix& V, ThreadPool* pool = nullptr) const;

    /// Batched Eq. 5: out[r] = total_current(V.row(r)). Without IR drop
    /// each reading is a single dot against the cached per-column
    /// conductance sums — O(N) per query instead of O(M·N).
    tensor::Vector total_current_batch(const tensor::Matrix& V, ThreadPool* pool = nullptr) const;

    /// Per-input-line supply currents: out[j] = v_j·G_j (amperes), the
    /// current each input driver sources. Tile-level current sensing (the
    /// DetectX instrumentation model) observes exactly these; they sum to
    /// total_current(v).
    tensor::Vector input_line_currents(const tensor::Vector& v) const;

    /// Static power with outputs at virtual ground: Σ_j v_j²·G_j, watts.
    double static_power(const tensor::Vector& v) const;

    /// total_current + static_power in one measurement (shares the noise
    /// draw pattern of separate calls).
    PowerReading read_power(const tensor::Vector& v) const;

    /// Ground-truth per-column conductance sums G_j (no noise) — for
    /// tests and for computing probe estimation error.
    tensor::Vector column_conductances() const { return column_conductance_sums(program_); }

    /// Ground-truth effective weight matrix (no read noise).
    tensor::Matrix effective_weights() const { return xbar::effective_weights(program_); }

    /// Number of current measurements taken so far (each output-current
    /// vector read or total-current read counts as one).
    std::uint64_t measurement_count() const { return measurements_; }

private:
    void apply_stuck_faults(Rng& rng);
    double cell_current(std::size_t i, std::size_t j, double g, double v) const;
    double noisy(double value) const;

    CrossbarProgram program_;
    NonIdealityConfig nonideal_;
    /// Post-fault caches for the batched fast path: (G⁺ − G⁻), its
    /// transpose (the GEMM operand — batched inference is V·(G⁺−G⁻)ᵀ),
    /// and the per-column conductance sums G_j. Invalid under IR drop
    /// (the cell current is no longer linear in g), so the batch methods
    /// fall back to the per-vector simulation there.
    tensor::Matrix g_diff_;
    tensor::Matrix g_diff_t_;
    tensor::Vector g_col_;
    mutable Rng read_rng_;
    mutable std::uint64_t measurements_ = 0;
};

}  // namespace xbarsec::xbar
