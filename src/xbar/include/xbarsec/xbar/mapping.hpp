// Weight → conductance mapping (Section II-B, Eq. 6).
//
// Each weight w_ij is realised by a differential pair (G⁺_ij, G⁻_ij) with
// the paper's one-sided convention: positive weights programme G⁺ and
// leave G⁻ in the off state, negative weights mirror. This minimises
// static power (the paper's stated rationale) and makes the mapping
// bijective, which in turn makes the total-current side channel carry the
// column 1-norms:  G⁺_ij + G⁻_ij = 2·g_off + |w_ij|·scale.
#pragma once

#include <cstdint>
#include <optional>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/xbar/device.hpp"

namespace xbarsec::xbar {

/// Options controlling map_weights().
struct MappingOptions {
    /// Weight magnitude that maps to g_on_max. Defaults to max|W| of the
    /// matrix being mapped (0 ⇒ auto). Fixing it explicitly keeps scales
    /// comparable across networks.
    double weight_max = 0.0;

    /// Seed for programming (write) noise; only used when the device spec
    /// has write_noise_std > 0.
    std::uint64_t noise_seed = 0x7700AA55EE11BB22ull;
};

/// A crossbar's programmed state: the two conductance matrices plus the
/// metadata needed to interpret currents as weights.
struct CrossbarProgram {
    tensor::Matrix g_plus;   ///< M×N, siemens
    tensor::Matrix g_minus;  ///< M×N, siemens
    DeviceSpec spec;
    double weight_scale = 0.0;  ///< siemens per unit weight: g = g_off + |w|·weight_scale

    std::size_t rows() const { return g_plus.rows(); }
    std::size_t cols() const { return g_plus.cols(); }
};

/// Programs a weight matrix onto differential conductance pairs using the
/// one-sided mapping. Applies write noise and level quantisation from the
/// spec. Throws ConfigError on invalid spec or all-zero W with
/// weight_max == 0.
CrossbarProgram map_weights(const tensor::Matrix& W, const DeviceSpec& spec,
                            const MappingOptions& options = {});

/// Decodes the effective weight matrix the crossbar actually implements:
/// Ŵ = (G⁺ − G⁻) / weight_scale. Equals W exactly for an ideal spec.
tensor::Matrix effective_weights(const CrossbarProgram& program);

/// Per-column total conductance G_j = Σ_i (G⁺_ij + G⁻_ij) — the quantity
/// Eq. 5 exposes through the total current.
tensor::Vector column_conductance_sums(const CrossbarProgram& program);

/// Derives the device-variation seed for replica `replica` of a fleet
/// from a base seed: replica 0 gets `base` unchanged (a fleet of one is
/// bit-identical to the single deployment it generalises), and every
/// other replica gets an independent well-mixed stream. Feed the result
/// into both NonIdealityConfig::seed (fault placement, read noise) and
/// MappingOptions::noise_seed (write noise) so each replica carries its
/// own physical signature over the same programmed weights.
std::uint64_t replica_variation_seed(std::uint64_t base, std::size_t replica);

}  // namespace xbarsec::xbar
