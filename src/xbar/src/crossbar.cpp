#include "xbarsec/xbar/crossbar.hpp"

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::xbar {

void NonIdealityConfig::validate() const {
    if (read_noise_std < 0.0) throw ConfigError("NonIdealityConfig: read_noise_std must be >= 0");
    if (stuck_on_fraction < 0.0 || stuck_on_fraction > 1.0 || stuck_off_fraction < 0.0 ||
        stuck_off_fraction > 1.0 || stuck_on_fraction + stuck_off_fraction > 1.0) {
        throw ConfigError("NonIdealityConfig: stuck fractions must be in [0,1] and sum to <= 1");
    }
    if (line_resistance < 0.0) throw ConfigError("NonIdealityConfig: line_resistance must be >= 0");
}

Crossbar::Crossbar(CrossbarProgram program, NonIdealityConfig nonideal)
    : program_(std::move(program)), nonideal_(nonideal) {
    nonideal_.validate();
    XS_EXPECTS(program_.rows() > 0 && program_.cols() > 0);
    if (nonideal_.stuck_on_fraction > 0.0 || nonideal_.stuck_off_fraction > 0.0) {
        Rng fault_rng(nonideal_.seed);
        apply_stuck_faults(fault_rng);
    }
    build_caches();
}

void Crossbar::apply_stuck_faults(Rng& rng) {
    // Each physical device (2 per weight) independently draws its fate.
    auto afflict = [&](tensor::Matrix& g) {
        for (std::size_t i = 0; i < g.rows(); ++i) {
            for (std::size_t j = 0; j < g.cols(); ++j) {
                const double u = rng.uniform();
                if (u < nonideal_.stuck_on_fraction) {
                    g(i, j) = program_.spec.g_on_max;
                } else if (u < nonideal_.stuck_on_fraction + nonideal_.stuck_off_fraction) {
                    g(i, j) = program_.spec.g_off;
                }
            }
        }
    };
    afflict(program_.g_plus);
    afflict(program_.g_minus);
}

void Crossbar::build_caches() {
    // The IR-drop divider i = g·v/(1 + r_wire·g) is linear in v, so the
    // whole non-ideality is an elementwise conductance attenuation
    // a = g/(1 + r_line·(i+j+2)·g), computed once over the post-fault
    // program (r_line = 0 leaves a = g). Every measurement path reads
    // these caches; the per-cell physics survives only in cell_current()
    // for the retained reference implementations.
    const std::size_t m = rows(), n = cols();
    const double r_line = nonideal_.line_resistance;
    g_diff_ = tensor::Matrix(m, n, 0.0);
    g_col_ = tensor::Vector(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double a_plus = program_.g_plus(i, j);
            double a_minus = program_.g_minus(i, j);
            if (r_line != 0.0) {
                const double r_wire = r_line * static_cast<double>(i + j + 2);
                a_plus /= 1.0 + r_wire * a_plus;
                a_minus /= 1.0 + r_wire * a_minus;
            }
            g_diff_(i, j) = a_plus - a_minus;
            g_col_[j] += a_plus + a_minus;
        }
    }
    g_diff_t_ = g_diff_.transposed();
}

double Crossbar::cell_current(std::size_t i, std::size_t j, double g, double v) const {
    if (g == 0.0 || v == 0.0) return 0.0;
    if (nonideal_.line_resistance == 0.0) return g * v;
    // First-order IR drop: the series wire resistance seen by cell (i, j)
    // grows with its distance from the input driver (j segments) and the
    // sense amplifier (i segments); the cell and the wire form a divider.
    const double r_wire =
        nonideal_.line_resistance * static_cast<double>(i + j + 2);
    return g * v / (1.0 + r_wire * g);
}

double Crossbar::noise_factor(std::uint64_t meas, std::uint64_t idx) const {
    if (nonideal_.read_noise_std == 0.0) return 1.0;
    return 1.0 + nonideal_.read_noise_std * Rng::normal_at(nonideal_.seed, meas, idx);
}

std::uint64_t Crossbar::reserve_measurements(std::uint64_t n) const {
    return measurements_.fetch_add(n, std::memory_order_relaxed);
}

tensor::Vector Crossbar::output_currents(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    // One-row batch through the same row-stable GEMM as the batched path,
    // so a scalar read is bit-identical to the matching batch row.
    tensor::Matrix V(1, cols());
    auto dst = V.row_span(0);
    for (std::size_t j = 0; j < cols(); ++j) dst[j] = v[j];
    tensor::Matrix out = output_currents_batch(V, nullptr);
    return out.row(0);
}

tensor::Vector Crossbar::mvm(const tensor::Vector& v) const {
    tensor::Vector i_s = output_currents(v);
    i_s /= program_.weight_scale;
    return i_s;
}

double Crossbar::total_current(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    // Eq. 5: both G⁺ and G⁻ draw supply current regardless of weight sign.
    const std::uint64_t meas = reserve_measurements(1);
    return tensor::dot(v, g_col_) * noise_factor(meas, 0);
}

tensor::Matrix Crossbar::output_currents_batch(const tensor::Matrix& V, ThreadPool* pool) const {
    XS_EXPECTS(V.cols() == cols());
    const std::size_t batch = V.rows();
    tensor::Matrix out(batch, rows(), 0.0);
    if (batch == 0) return out;
    const std::uint64_t base = reserve_measurements(batch);

    // Dense path for every configuration: out = V · (A⁺ − A⁻)ᵀ as one
    // GEMM against the cached attenuated differential conductances. The
    // row-stable variant guarantees each output row's accumulation chain
    // is independent of the batch size and the pool partition.
    tensor::gemm_rowstable(1.0, V, tensor::Op::None, g_diff_t_, tensor::Op::None, 0.0, out, pool);

    if (nonideal_.read_noise_std != 0.0) {
        // Counter-based stream: row r of this batch is measurement
        // base + r, element i is coordinate i — a pure function, so any
        // batch split or pool partition reproduces it.
        const std::size_t m = rows();
        for (std::size_t r = 0; r < batch; ++r) {
            auto row = out.row_span(r);
            for (std::size_t i = 0; i < m; ++i) row[i] *= noise_factor(base + r, i);
        }
    }
    return out;
}

tensor::Matrix Crossbar::mvm_batch(const tensor::Matrix& V, ThreadPool* pool) const {
    tensor::Matrix S = output_currents_batch(V, pool);
    S *= 1.0 / program_.weight_scale;
    return S;
}

tensor::Vector Crossbar::total_current_batch(const tensor::Matrix& V, ThreadPool* pool) const {
    XS_EXPECTS(V.cols() == cols());
    const std::size_t batch = V.rows();
    tensor::Vector out(batch, 0.0);
    if (batch == 0) return out;
    const std::uint64_t base = reserve_measurements(batch);

    // Eq. 5 for the whole batch: one dot per row against the cached
    // attenuated column sums, each row using the exact accumulation chain
    // of the scalar total_current() path (rowwise_dot), so scalar, batch,
    // split-batch, and pooled reads agree bit for bit.
    out = tensor::rowwise_dot(V, g_col_, pool);

    if (nonideal_.read_noise_std != 0.0) {
        for (std::size_t r = 0; r < batch; ++r) out[r] *= noise_factor(base + r, 0);
    }
    return out;
}

tensor::Vector Crossbar::input_line_currents(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    const std::uint64_t meas = reserve_measurements(1);
    tensor::Vector out(cols(), 0.0);
    for (std::size_t j = 0; j < cols(); ++j) {
        const double vj = v[j];
        if (vj == 0.0) continue;
        out[j] = vj * g_col_[j] * noise_factor(meas, j);
    }
    return out;
}

double Crossbar::static_power(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    const std::uint64_t meas = reserve_measurements(1);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols(); ++j) {
        // P = V·I per cell with the output rail at virtual ground.
        acc += v[j] * v[j] * g_col_[j];
    }
    return acc * noise_factor(meas, 0);
}

PowerReading Crossbar::read_power(const tensor::Vector& v) const {
    PowerReading r;
    r.total_current = total_current(v);
    r.power = static_power(v);
    return r;
}

// ---- reference implementations ----------------------------------------------

tensor::Vector Crossbar::output_currents_reference(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    const std::uint64_t meas = reserve_measurements(1);
    tensor::Vector out(rows(), 0.0);
    for (std::size_t i = 0; i < rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < cols(); ++j) {
            const double vj = v[j];
            if (vj == 0.0) continue;
            acc += cell_current(i, j, program_.g_plus(i, j), vj);
            acc -= cell_current(i, j, program_.g_minus(i, j), vj);
        }
        out[i] = acc * noise_factor(meas, i);
    }
    return out;
}

double Crossbar::total_current_reference(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    const std::uint64_t meas = reserve_measurements(1);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols(); ++j) {
        const double vj = v[j];
        if (vj == 0.0) continue;
        for (std::size_t i = 0; i < rows(); ++i) {
            acc += cell_current(i, j, program_.g_plus(i, j), vj);
            acc += cell_current(i, j, program_.g_minus(i, j), vj);
        }
    }
    return acc * noise_factor(meas, 0);
}

double Crossbar::static_power_reference(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    const std::uint64_t meas = reserve_measurements(1);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols(); ++j) {
        const double vj = v[j];
        if (vj == 0.0) continue;
        for (std::size_t i = 0; i < rows(); ++i) {
            acc += vj * cell_current(i, j, program_.g_plus(i, j), vj);
            acc += vj * cell_current(i, j, program_.g_minus(i, j), vj);
        }
    }
    return acc * noise_factor(meas, 0);
}

}  // namespace xbarsec::xbar
