#include "xbarsec/xbar/crossbar.hpp"

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::xbar {

void NonIdealityConfig::validate() const {
    if (read_noise_std < 0.0) throw ConfigError("NonIdealityConfig: read_noise_std must be >= 0");
    if (stuck_on_fraction < 0.0 || stuck_on_fraction > 1.0 || stuck_off_fraction < 0.0 ||
        stuck_off_fraction > 1.0 || stuck_on_fraction + stuck_off_fraction > 1.0) {
        throw ConfigError("NonIdealityConfig: stuck fractions must be in [0,1] and sum to <= 1");
    }
    if (line_resistance < 0.0) throw ConfigError("NonIdealityConfig: line_resistance must be >= 0");
}

Crossbar::Crossbar(CrossbarProgram program, NonIdealityConfig nonideal)
    : program_(std::move(program)), nonideal_(nonideal), read_rng_(nonideal.seed ^ 0x11C0FFEEull) {
    nonideal_.validate();
    XS_EXPECTS(program_.rows() > 0 && program_.cols() > 0);
    if (nonideal_.stuck_on_fraction > 0.0 || nonideal_.stuck_off_fraction > 0.0) {
        Rng fault_rng(nonideal_.seed);
        apply_stuck_faults(fault_rng);
    }
    g_diff_ = program_.g_plus;
    g_diff_ -= program_.g_minus;
    g_diff_t_ = g_diff_.transposed();
    g_col_ = column_conductance_sums(program_);
}

void Crossbar::apply_stuck_faults(Rng& rng) {
    // Each physical device (2 per weight) independently draws its fate.
    auto afflict = [&](tensor::Matrix& g) {
        for (std::size_t i = 0; i < g.rows(); ++i) {
            for (std::size_t j = 0; j < g.cols(); ++j) {
                const double u = rng.uniform();
                if (u < nonideal_.stuck_on_fraction) {
                    g(i, j) = program_.spec.g_on_max;
                } else if (u < nonideal_.stuck_on_fraction + nonideal_.stuck_off_fraction) {
                    g(i, j) = program_.spec.g_off;
                }
            }
        }
    };
    afflict(program_.g_plus);
    afflict(program_.g_minus);
}

double Crossbar::cell_current(std::size_t i, std::size_t j, double g, double v) const {
    if (g == 0.0 || v == 0.0) return 0.0;
    if (nonideal_.line_resistance == 0.0) return g * v;
    // First-order IR drop: the series wire resistance seen by cell (i, j)
    // grows with its distance from the input driver (j segments) and the
    // sense amplifier (i segments); the cell and the wire form a divider.
    const double r_wire =
        nonideal_.line_resistance * static_cast<double>(i + j + 2);
    return g * v / (1.0 + r_wire * g);
}

double Crossbar::noisy(double value) const {
    if (nonideal_.read_noise_std == 0.0) return value;
    return value * (1.0 + read_rng_.normal(0.0, nonideal_.read_noise_std));
}

tensor::Vector Crossbar::output_currents(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    tensor::Vector out(rows(), 0.0);
    for (std::size_t i = 0; i < rows(); ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < cols(); ++j) {
            const double vj = v[j];
            if (vj == 0.0) continue;
            acc += cell_current(i, j, program_.g_plus(i, j), vj);
            acc -= cell_current(i, j, program_.g_minus(i, j), vj);
        }
        out[i] = noisy(acc);
    }
    ++measurements_;
    return out;
}

tensor::Vector Crossbar::mvm(const tensor::Vector& v) const {
    tensor::Vector i_s = output_currents(v);
    i_s /= program_.weight_scale;
    return i_s;
}

double Crossbar::total_current(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    // Eq. 5: both G⁺ and G⁻ draw supply current regardless of weight sign.
    double acc = 0.0;
    for (std::size_t j = 0; j < cols(); ++j) {
        const double vj = v[j];
        if (vj == 0.0) continue;
        for (std::size_t i = 0; i < rows(); ++i) {
            acc += cell_current(i, j, program_.g_plus(i, j), vj);
            acc += cell_current(i, j, program_.g_minus(i, j), vj);
        }
    }
    ++measurements_;
    return noisy(acc);
}

tensor::Matrix Crossbar::output_currents_batch(const tensor::Matrix& V, ThreadPool* pool) const {
    XS_EXPECTS(V.cols() == cols());
    const std::size_t batch = V.rows();
    tensor::Matrix out(batch, rows(), 0.0);
    if (batch == 0) return out;

    if (nonideal_.line_resistance != 0.0) {
        // IR drop makes the cell current nonlinear in conductance; run the
        // faithful per-vector simulation (serially: it shares read_rng_).
        for (std::size_t r = 0; r < batch; ++r) out.set_row(r, output_currents(V.row(r)));
        return out;
    }
    measurements_ += batch;

    // Dense fast path: out = V · (G⁺ − G⁻)ᵀ as one GEMM against the cached
    // transposed differential conductances. The kernel layer blocks the
    // product into cache-resident panels and (given a pool) shards row
    // panels across workers; the row partition does not change the result.
    tensor::gemm(1.0, V, tensor::Op::None, g_diff_t_, tensor::Op::None, 0.0, out, pool);

    if (nonideal_.read_noise_std != 0.0) {
        // Drawn serially in the same element order as the per-vector calls,
        // so batched and scalar measurements consume the same noise stream.
        const std::size_t m = rows();
        for (std::size_t r = 0; r < batch; ++r) {
            for (std::size_t i = 0; i < m; ++i) out(r, i) = noisy(out(r, i));
        }
    }
    return out;
}

tensor::Matrix Crossbar::mvm_batch(const tensor::Matrix& V, ThreadPool* pool) const {
    tensor::Matrix S = output_currents_batch(V, pool);
    S *= 1.0 / program_.weight_scale;
    return S;
}

tensor::Vector Crossbar::total_current_batch(const tensor::Matrix& V, ThreadPool* pool) const {
    XS_EXPECTS(V.cols() == cols());
    const std::size_t batch = V.rows();
    tensor::Vector out(batch, 0.0);
    if (batch == 0) return out;

    if (nonideal_.line_resistance != 0.0) {
        for (std::size_t r = 0; r < batch; ++r) out[r] = total_current(V.row(r));
        return out;
    }
    measurements_ += batch;

    // Eq. 5 for the whole batch is one matvec against the cached column
    // conductance sums; the kernel tiles V's rows into cache-resident
    // slices (sharded over the pool when present, same result).
    out = tensor::matvec(V, g_col_, pool);

    if (nonideal_.read_noise_std != 0.0) {
        for (std::size_t r = 0; r < batch; ++r) out[r] = noisy(out[r]);
    }
    return out;
}

tensor::Vector Crossbar::input_line_currents(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    tensor::Vector out(cols(), 0.0);
    for (std::size_t j = 0; j < cols(); ++j) {
        const double vj = v[j];
        if (vj == 0.0) continue;
        double acc = 0.0;
        for (std::size_t i = 0; i < rows(); ++i) {
            acc += cell_current(i, j, program_.g_plus(i, j), vj);
            acc += cell_current(i, j, program_.g_minus(i, j), vj);
        }
        out[j] = noisy(acc);
    }
    ++measurements_;
    return out;
}

double Crossbar::static_power(const tensor::Vector& v) const {
    XS_EXPECTS(v.size() == cols());
    double acc = 0.0;
    for (std::size_t j = 0; j < cols(); ++j) {
        const double vj = v[j];
        if (vj == 0.0) continue;
        for (std::size_t i = 0; i < rows(); ++i) {
            // P = V·I per cell with the output rail at virtual ground.
            acc += vj * cell_current(i, j, program_.g_plus(i, j), vj);
            acc += vj * cell_current(i, j, program_.g_minus(i, j), vj);
        }
    }
    ++measurements_;
    return noisy(acc);
}

PowerReading Crossbar::read_power(const tensor::Vector& v) const {
    PowerReading r;
    r.total_current = total_current(v);
    r.power = static_power(v);
    return r;
}

}  // namespace xbarsec::xbar
