#include "xbarsec/xbar/mapping.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::xbar {

CrossbarProgram map_weights(const tensor::Matrix& W, const DeviceSpec& spec,
                            const MappingOptions& options) {
    spec.validate();
    XS_EXPECTS(!W.empty());
    double w_max = options.weight_max;
    if (w_max == 0.0) w_max = tensor::max_abs(W);
    if (w_max <= 0.0) {
        throw ConfigError("map_weights: weight_max is zero (all-zero weight matrix?)");
    }

    CrossbarProgram program;
    program.spec = spec;
    program.weight_scale = (spec.g_on_max - spec.g_off) / w_max;
    program.g_plus = tensor::Matrix(W.rows(), W.cols(), spec.g_off);
    program.g_minus = tensor::Matrix(W.rows(), W.cols(), spec.g_off);

    Rng noise_rng(options.noise_seed);
    const bool noisy = spec.write_noise_std > 0.0;

    for (std::size_t i = 0; i < W.rows(); ++i) {
        for (std::size_t j = 0; j < W.cols(); ++j) {
            const double w = W(i, j);
            if (w == 0.0) continue;  // both devices stay at g_off
            const double magnitude = std::min(std::abs(w), w_max);
            double g = spec.g_off + magnitude * program.weight_scale;
            if (noisy) {
                g *= 1.0 + noise_rng.normal(0.0, spec.write_noise_std);
                g = std::clamp(g, spec.g_off, spec.g_on_max);
            }
            g = quantize_conductance(spec, g);
            if (w > 0.0) {
                program.g_plus(i, j) = g;
            } else {
                program.g_minus(i, j) = g;
            }
        }
    }
    return program;
}

tensor::Matrix effective_weights(const CrossbarProgram& program) {
    XS_EXPECTS(program.weight_scale > 0.0);
    tensor::Matrix W(program.rows(), program.cols());
    for (std::size_t i = 0; i < W.rows(); ++i) {
        for (std::size_t j = 0; j < W.cols(); ++j) {
            W(i, j) = (program.g_plus(i, j) - program.g_minus(i, j)) / program.weight_scale;
        }
    }
    return W;
}

tensor::Vector column_conductance_sums(const CrossbarProgram& program) {
    tensor::Vector g(program.cols(), 0.0);
    for (std::size_t i = 0; i < program.rows(); ++i) {
        for (std::size_t j = 0; j < program.cols(); ++j) {
            g[j] += program.g_plus(i, j) + program.g_minus(i, j);
        }
    }
    return g;
}

std::uint64_t replica_variation_seed(std::uint64_t base, std::size_t replica) {
    if (replica == 0) return base;
    // splitmix64 finaliser over base ⊕ replica-index stream: cheap,
    // stateless, and avalanching — adjacent replica indices yield
    // unrelated fault placements and noise streams.
    std::uint64_t z = base + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(replica);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

}  // namespace xbarsec::xbar
