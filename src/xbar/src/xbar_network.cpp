#include "xbarsec/xbar/xbar_network.hpp"

#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::xbar {

namespace {

Crossbar build_crossbar(const nn::SingleLayerNet& net, const DeviceSpec& spec,
                        const NonIdealityConfig& nonideal, const MappingOptions& mapping) {
    XS_EXPECTS_MSG(!net.layer().has_bias(),
                   "a passive crossbar computes a pure matrix-vector product; "
                   "train the network without a bias to deploy it");
    return Crossbar(map_weights(net.weights(), spec, mapping), nonideal);
}

}  // namespace

CrossbarNetwork::CrossbarNetwork(const nn::SingleLayerNet& net, const DeviceSpec& spec,
                                 const NonIdealityConfig& nonideal, const MappingOptions& mapping)
    : crossbar_(build_crossbar(net, spec, nonideal, mapping)),
      activation_(net.activation()),
      loss_(net.loss_kind()) {}

tensor::Vector CrossbarNetwork::predict(const tensor::Vector& u) const {
    return nn::apply_activation(activation_, crossbar_.mvm(u));
}

int CrossbarNetwork::classify(const tensor::Vector& u) const {
    return static_cast<int>(tensor::argmax(predict(u)));
}

tensor::Matrix CrossbarNetwork::predict_batch(const tensor::Matrix& U, ThreadPool* pool) const {
    return nn::apply_activation_rows(activation_, crossbar_.mvm_batch(U, pool));
}

std::vector<int> CrossbarNetwork::classify_batch(const tensor::Matrix& U, ThreadPool* pool) const {
    return tensor::argmax_rows(predict_batch(U, pool));
}

nn::SingleLayerNet CrossbarNetwork::effective_network() const {
    nn::DenseLayer layer(outputs(), inputs(), /*with_bias=*/false);
    layer.weights() = crossbar_.effective_weights();
    return nn::SingleLayerNet(std::move(layer), activation_, loss_);
}

double CrossbarNetwork::accuracy(const data::Dataset& dataset) const {
    XS_EXPECTS(dataset.size() > 0);
    XS_EXPECTS(dataset.input_dim() == inputs());
    const std::vector<int> labels = classify_batch(dataset.inputs());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
        if (labels[i] == dataset.label(i)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(dataset.size());
}

}  // namespace xbarsec::xbar
