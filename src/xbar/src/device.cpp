#include "xbarsec/xbar/device.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"

namespace xbarsec::xbar {

void DeviceSpec::validate() const {
    if (!(g_on_max > 0.0)) throw ConfigError("DeviceSpec: g_on_max must be positive");
    if (g_off < 0.0) throw ConfigError("DeviceSpec: g_off must be non-negative");
    if (g_off >= g_on_max) throw ConfigError("DeviceSpec: g_off must be below g_on_max");
    if (write_noise_std < 0.0) throw ConfigError("DeviceSpec: write_noise_std must be >= 0");
    if (conductance_levels < 0) throw ConfigError("DeviceSpec: conductance_levels must be >= 0");
    if (conductance_levels == 2) {
        // Two levels means binary devices; allowed, but worth a contract
        // that it is intentional: a single intermediate level cannot
        // represent analog weights at all. (No throw; mapping handles it.)
    }
}

double quantize_conductance(const DeviceSpec& spec, double g) {
    XS_EXPECTS(g >= spec.g_off - 1e-18 && g <= spec.g_on_max + 1e-18);
    if (spec.conductance_levels <= 1) return g;
    const double span = spec.g_on_max - spec.g_off;
    const double steps = static_cast<double>(spec.conductance_levels - 1);
    const double t = (g - spec.g_off) / span;                  // [0, 1]
    const double level = std::round(t * steps) / steps;        // snapped
    return spec.g_off + std::clamp(level, 0.0, 1.0) * span;
}

}  // namespace xbarsec::xbar
