#include "xbarsec/xbar/multilayer.hpp"

#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::xbar {

MultiLayerCrossbarNetwork::MultiLayerCrossbarNetwork(const nn::Mlp& mlp, const DeviceSpec& spec,
                                                     const NonIdealityConfig& nonideal)
    : config_(mlp.config()) {
    XS_EXPECTS(mlp.depth() >= 1);
    XS_EXPECTS_MSG(!config_.with_bias,
                   "passive crossbars compute pure matrix-vector products; "
                   "build the Mlp with with_bias = false to deploy it");
    layers_.reserve(mlp.depth());
    for (std::size_t l = 0; l < mlp.depth(); ++l) {
        NonIdealityConfig per_layer = nonideal;
        per_layer.seed = nonideal.seed + 0x9E37 * l;  // independent fault/noise streams
        layers_.emplace_back(map_weights(mlp.layers()[l].weights(), spec), per_layer);
    }
}

const Crossbar& MultiLayerCrossbarNetwork::layer(std::size_t l) const {
    XS_EXPECTS(l < layers_.size());
    return layers_[l];
}

tensor::Vector MultiLayerCrossbarNetwork::input_to_layer(std::size_t l,
                                                         const tensor::Vector& u) const {
    XS_EXPECTS(l < layers_.size());
    XS_EXPECTS(u.size() == inputs());
    tensor::Vector x = u;
    for (std::size_t k = 0; k < l; ++k) {
        x = nn::apply_activation(config_.hidden_activation, layers_[k].mvm(x));
    }
    return x;
}

tensor::Vector MultiLayerCrossbarNetwork::predict(const tensor::Vector& u) const {
    tensor::Vector x = input_to_layer(layers_.size() - 1, u);
    return nn::apply_activation(config_.output_activation, layers_.back().mvm(x));
}

int MultiLayerCrossbarNetwork::classify(const tensor::Vector& u) const {
    return static_cast<int>(tensor::argmax(predict(u)));
}

double MultiLayerCrossbarNetwork::layer_total_current(std::size_t l,
                                                      const tensor::Vector& u) const {
    return layers_[l].total_current(input_to_layer(l, u));
}

double MultiLayerCrossbarNetwork::accuracy(const data::Dataset& dataset) const {
    XS_EXPECTS(dataset.size() > 0);
    XS_EXPECTS(dataset.input_dim() == inputs());
    std::size_t hits = 0;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
        if (classify(dataset.input(i)) == dataset.label(i)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(dataset.size());
}

}  // namespace xbarsec::xbar
