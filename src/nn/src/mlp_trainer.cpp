#include "xbarsec/nn/mlp_trainer.hpp"

#include <algorithm>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

TrainHistory train_mlp(Mlp& mlp, const data::Dataset& dataset, const TrainConfig& config) {
    XS_EXPECTS(dataset.size() > 0);
    XS_EXPECTS(dataset.input_dim() == mlp.inputs());
    XS_EXPECTS(dataset.num_classes() == mlp.outputs());
    XS_EXPECTS(config.epochs > 0 && config.batch_size > 0);

    auto optimizer = make_optimizer(config.optimizer, config.learning_rate, config.momentum);
    std::vector<std::size_t> w_slots(mlp.depth()), b_slots(mlp.depth());
    for (std::size_t l = 0; l < mlp.depth(); ++l) {
        w_slots[l] = optimizer->register_parameter(mlp.layers()[l].weights().size());
        if (mlp.layers()[l].has_bias()) {
            b_slots[l] = optimizer->register_parameter(mlp.layers()[l].bias().size());
        }
    }

    double decay = 1.0;
    if (config.final_lr_fraction > 0.0 && config.epochs > 1 &&
        config.optimizer == OptimizerKind::Sgd) {
        decay = std::pow(config.final_lr_fraction, 1.0 / static_cast<double>(config.epochs - 1));
    }

    Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(dataset.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    TrainHistory history;
    history.epoch_loss.reserve(config.epochs);

    // Gradient accumulators, one per layer.
    std::vector<tensor::Matrix> grad_w;
    std::vector<tensor::Vector> grad_b;
    for (std::size_t l = 0; l < mlp.depth(); ++l) {
        grad_w.emplace_back(mlp.layers()[l].weights().rows(), mlp.layers()[l].weights().cols(),
                            0.0);
        grad_b.emplace_back(mlp.layers()[l].has_bias() ? mlp.layers()[l].bias().size() : 0, 0.0);
    }

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_acc = 0.0;
        for (std::size_t lo = 0; lo < dataset.size(); lo += config.batch_size) {
            const std::size_t hi = std::min(lo + config.batch_size, dataset.size());
            const double inv_b = 1.0 / static_cast<double>(hi - lo);
            for (auto& g : grad_w) g.fill(0.0);
            for (auto& g : grad_b) g.fill(0.0);

            for (std::size_t r = lo; r < hi; ++r) {
                const tensor::Vector u = dataset.input(order[r]);
                const tensor::Vector t = dataset.target(order[r]);
                loss_acc += mlp.loss(u, t);
                const Mlp::Gradients g = mlp.backprop(u, t);
                for (std::size_t l = 0; l < mlp.depth(); ++l) {
                    grad_w[l] += g.weights[l];
                    if (!grad_b[l].empty()) grad_b[l] += g.biases[l];
                }
            }

            for (std::size_t l = 0; l < mlp.depth(); ++l) {
                grad_w[l] *= inv_b;
                tensor::Matrix& W = mlp.layers()[l].weights();
                optimizer->step(w_slots[l], {W.data(), W.size()},
                                {grad_w[l].data(), grad_w[l].size()});
                if (!grad_b[l].empty()) {
                    grad_b[l] *= inv_b;
                    tensor::Vector& b = mlp.layers()[l].bias();
                    optimizer->step(b_slots[l], {b.data(), b.size()},
                                    {grad_b[l].data(), grad_b[l].size()});
                }
            }
        }
        history.epoch_loss.push_back(loss_acc / static_cast<double>(dataset.size()));
        if (auto* sgd = dynamic_cast<Sgd*>(optimizer.get()); sgd != nullptr && decay != 1.0) {
            sgd->set_learning_rate(sgd->learning_rate() * decay);
        }
    }
    return history;
}

double accuracy(const Mlp& mlp, const tensor::Matrix& X, const std::vector<int>& labels) {
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(X.rows() > 0);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < X.rows(); ++i) {
        if (mlp.classify(X.row(i)) == labels[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double accuracy(const Mlp& mlp, const data::Dataset& dataset) {
    return accuracy(mlp, dataset.inputs(), dataset.labels());
}

}  // namespace xbarsec::nn
