#include "xbarsec/nn/mlp_trainer.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/tensor/workspace.hpp"

namespace xbarsec::nn {

TrainHistory train_mlp(Mlp& mlp, const data::Dataset& dataset, const TrainConfig& config) {
    XS_EXPECTS(dataset.size() > 0);
    XS_EXPECTS(dataset.input_dim() == mlp.inputs());
    XS_EXPECTS(dataset.num_classes() == mlp.outputs());
    XS_EXPECTS(config.epochs > 0 && config.batch_size > 0);

    const std::size_t L = mlp.depth();
    auto optimizer = make_optimizer(config.optimizer, config.learning_rate, config.momentum);
    std::vector<std::size_t> w_slots(L), b_slots(L);
    for (std::size_t l = 0; l < L; ++l) {
        w_slots[l] = optimizer->register_parameter(mlp.layers()[l].weights().size());
        if (mlp.layers()[l].has_bias()) {
            b_slots[l] = optimizer->register_parameter(mlp.layers()[l].bias().size());
        }
    }

    double decay = 1.0;
    if (config.final_lr_fraction > 0.0 && config.epochs > 1 &&
        config.optimizer == OptimizerKind::Sgd) {
        decay = std::pow(config.final_lr_fraction, 1.0 / static_cast<double>(config.epochs - 1));
    }

    Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(dataset.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

    TrainHistory history;
    history.epoch_loss.reserve(config.epochs);

    const Activation out_act = mlp.config().output_activation;
    const Activation hid_act = mlp.config().hidden_activation;
    const Loss loss = mlp.config().loss;

    // Per-layer gradient accumulator (reused across batches).
    std::vector<tensor::Matrix> grad_w(L);
    for (std::size_t l = 0; l < L; ++l) {
        grad_w[l] = tensor::Matrix(mlp.layers()[l].weights().rows(),
                                   mlp.layers()[l].weights().cols(), 0.0);
    }

    // Forward caches: inputs[l] feeds layer l, pre[l] = S_l (batch rows).
    // The matrices themselves are Workspace slots; the pointer vectors are
    // reused across batches.
    std::vector<tensor::Matrix*> inputs(L), pre(L);

    // Workspace arena for the per-minibatch temporaries (see trainer.cpp:
    // arena off falls back to a fresh Workspace per batch, same code path,
    // bit-identical results). The bias-gradient buffers are hoisted too —
    // column_sums_into reuses them across batches.
    tensor::Workspace arena_ws;
    std::vector<tensor::Vector> grad_b(L);

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_acc = 0.0;
        for (std::size_t lo = 0; lo < dataset.size(); lo += config.batch_size) {
            const std::size_t hi = std::min(lo + config.batch_size, dataset.size());
            const std::size_t b = hi - lo;
            const double inv_b = 1.0 / static_cast<double>(b);
            tensor::Workspace fresh_ws;
            tensor::Workspace& ws = config.arena ? arena_ws : fresh_ws;
            ws.reset();

            tensor::Matrix& tb = ws.matrix(b, dataset.targets().cols());
            tensor::gather_rows(dataset.targets(), order, lo, hi, tb);

            // ---- batched forward with caches --------------------------------
            tensor::Matrix* x = &ws.matrix(b, dataset.inputs().cols());
            tensor::gather_rows(dataset.inputs(), order, lo, hi, *x);
            for (std::size_t l = 0; l < L; ++l) {
                inputs[l] = x;
                pre[l] = &ws.matrix(b, mlp.layers()[l].outputs());
                mlp.layers()[l].forward_batch_into(*inputs[l], *pre[l]);
                x = &ws.matrix(b, mlp.layers()[l].outputs());
                apply_activation_rows_into(l + 1 == L ? out_act : hid_act, *pre[l], *x);
            }
            loss_acc += loss_value_batch_sum(loss, *x, tb);

            // ---- batched backward: Δ walks the layers in reverse ------------
            tensor::Matrix* delta = &ws.matrix(b, mlp.layers()[L - 1].outputs());
            loss_gradient_preactivation_batch_into(out_act, loss, *pre[L - 1], tb, *delta);
            for (std::size_t lrev = 0; lrev < L; ++lrev) {
                const std::size_t l = L - 1 - lrev;
                // grad_W = 1/b · Δᵀ·X_l (the mean of the per-sample outer
                // products, as one GEMM).
                tensor::gemm(inv_b, *delta, tensor::Op::Transpose, *inputs[l], tensor::Op::None,
                             0.0, grad_w[l]);
                if (mlp.layers()[l].has_bias()) {
                    tensor::column_sums_into(*delta, grad_b[l]);
                    grad_b[l] *= inv_b;
                }
                if (l > 0) {
                    // Upstream = Δ·W_l, gated by f'(S_{l-1}).
                    tensor::Matrix& upstream = ws.matrix(b, mlp.layers()[l].weights().cols());
                    tensor::gemm(1.0, *delta, tensor::Op::None, mlp.layers()[l].weights(),
                                 tensor::Op::None, 0.0, upstream);
                    tensor::Matrix& fprime = ws.matrix(b, mlp.layers()[l - 1].outputs());
                    activation_derivative_rows_into(hid_act, *pre[l - 1], fprime);
                    double* __restrict up = upstream.data();
                    const double* __restrict fp = fprime.data();
                    for (std::size_t i = 0; i < upstream.size(); ++i) up[i] *= fp[i];
                    delta = &upstream;
                }
            }

            // All gradients were taken at the pre-update weights; apply the
            // optimizer steps afterwards, exactly like the per-sample path.
            for (std::size_t l = 0; l < L; ++l) {
                tensor::Matrix& W = mlp.layers()[l].weights();
                optimizer->step(w_slots[l], {W.data(), W.size()},
                                {grad_w[l].data(), grad_w[l].size()});
                if (mlp.layers()[l].has_bias()) {
                    tensor::Vector& b = mlp.layers()[l].bias();
                    optimizer->step(b_slots[l], {b.data(), b.size()},
                                    {grad_b[l].data(), grad_b[l].size()});
                }
            }
        }
        history.epoch_loss.push_back(loss_acc / static_cast<double>(dataset.size()));
        if (auto* sgd = dynamic_cast<Sgd*>(optimizer.get()); sgd != nullptr && decay != 1.0) {
            sgd->set_learning_rate(sgd->learning_rate() * decay);
        }
    }
    return history;
}

double accuracy(const Mlp& mlp, const tensor::Matrix& X, const std::vector<int>& labels) {
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(X.rows() > 0);
    const std::vector<int> predicted = mlp.classify_batch(X);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < X.rows(); ++i) {
        if (predicted[i] == labels[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double accuracy(const Mlp& mlp, const data::Dataset& dataset) {
    return accuracy(mlp, dataset.inputs(), dataset.labels());
}

}  // namespace xbarsec::nn
