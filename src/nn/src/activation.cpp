#include "xbarsec/nn/activation.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

std::string to_string(Activation a) {
    switch (a) {
        case Activation::Linear: return "linear";
        case Activation::Softmax: return "softmax";
        case Activation::Sigmoid: return "sigmoid";
        case Activation::Relu: return "relu";
        case Activation::Tanh: return "tanh";
    }
    return "?";
}

Activation activation_from_string(const std::string& name) {
    if (name == "linear") return Activation::Linear;
    if (name == "softmax") return Activation::Softmax;
    if (name == "sigmoid") return Activation::Sigmoid;
    if (name == "relu") return Activation::Relu;
    if (name == "tanh") return Activation::Tanh;
    throw ConfigError("unknown activation '" + name + "'");
}

tensor::Vector softmax(const tensor::Vector& s) {
    XS_EXPECTS(!s.empty());
    tensor::Vector out(s.size());
    const double m = tensor::max(s);
    double denom = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        out[i] = std::exp(s[i] - m);
        denom += out[i];
    }
    for (auto& x : out) x /= denom;
    return out;
}

tensor::Vector apply_activation(Activation a, const tensor::Vector& s) {
    switch (a) {
        case Activation::Linear: return s;
        case Activation::Softmax: return softmax(s);
        case Activation::Sigmoid: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = 1.0 / (1.0 + std::exp(-s[i]));
            return out;
        }
        case Activation::Relu: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::max(0.0, s[i]);
            return out;
        }
        case Activation::Tanh: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::tanh(s[i]);
            return out;
        }
    }
    throw ConfigError("unhandled activation");
}

tensor::Matrix apply_activation_rows(Activation a, const tensor::Matrix& S) {
    if (a == Activation::Linear) return S;
    tensor::Matrix out(S.rows(), S.cols());
    for (std::size_t i = 0; i < S.rows(); ++i) {
        // Row extraction keeps softmax's per-sample normalisation correct.
        tensor::Vector row(S.cols());
        const auto src = S.row_span(i);
        std::copy(src.begin(), src.end(), row.begin());
        const tensor::Vector activated = apply_activation(a, row);
        auto dst = out.row_span(i);
        std::copy(activated.begin(), activated.end(), dst.begin());
    }
    return out;
}

tensor::Vector activation_derivative(Activation a, const tensor::Vector& s) {
    switch (a) {
        case Activation::Linear: return tensor::Vector(s.size(), 1.0);
        case Activation::Softmax:
            throw ConfigError(
                "softmax has no elementwise derivative; use the fused softmax+crossentropy "
                "gradient in loss.hpp");
        case Activation::Sigmoid: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) {
                const double f = 1.0 / (1.0 + std::exp(-s[i]));
                out[i] = f * (1.0 - f);
            }
            return out;
        }
        case Activation::Relu: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = s[i] > 0.0 ? 1.0 : 0.0;
            return out;
        }
        case Activation::Tanh: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) {
                const double t = std::tanh(s[i]);
                out[i] = 1.0 - t * t;
            }
            return out;
        }
    }
    throw ConfigError("unhandled activation");
}

}  // namespace xbarsec::nn
