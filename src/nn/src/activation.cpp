#include "xbarsec/nn/activation.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

std::string to_string(Activation a) {
    switch (a) {
        case Activation::Linear: return "linear";
        case Activation::Softmax: return "softmax";
        case Activation::Sigmoid: return "sigmoid";
        case Activation::Relu: return "relu";
        case Activation::Tanh: return "tanh";
    }
    return "?";
}

Activation activation_from_string(const std::string& name) {
    if (name == "linear") return Activation::Linear;
    if (name == "softmax") return Activation::Softmax;
    if (name == "sigmoid") return Activation::Sigmoid;
    if (name == "relu") return Activation::Relu;
    if (name == "tanh") return Activation::Tanh;
    throw ConfigError("unknown activation '" + name + "'");
}

void softmax_row(const double* s, double* out, std::size_t n) {
    XS_EXPECTS(n > 0);
    double m = s[0];
    for (std::size_t i = 1; i < n; ++i) m = std::max(m, s[i]);
    double denom = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = std::exp(s[i] - m);
        denom += out[i];
    }
    for (std::size_t i = 0; i < n; ++i) out[i] /= denom;
}

tensor::Vector softmax(const tensor::Vector& s) {
    XS_EXPECTS(!s.empty());
    tensor::Vector out(s.size());
    softmax_row(s.data(), out.data(), s.size());
    return out;
}

tensor::Vector apply_activation(Activation a, const tensor::Vector& s) {
    switch (a) {
        case Activation::Linear: return s;
        case Activation::Softmax: return softmax(s);
        case Activation::Sigmoid: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = 1.0 / (1.0 + std::exp(-s[i]));
            return out;
        }
        case Activation::Relu: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::max(0.0, s[i]);
            return out;
        }
        case Activation::Tanh: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = std::tanh(s[i]);
            return out;
        }
    }
    throw ConfigError("unhandled activation");
}

tensor::Matrix apply_activation_rows(Activation a, const tensor::Matrix& S) {
    if (a == Activation::Linear) return S;
    tensor::Matrix out(S.rows(), S.cols());
    apply_activation_rows_into(a, S, out);
    return out;
}

void apply_activation_rows_into(Activation a, const tensor::Matrix& S, tensor::Matrix& out) {
    XS_EXPECTS(&out != &S);
    out.resize(S.rows(), S.cols());
    const std::size_t n = S.cols();
    if (a == Activation::Linear) {
        std::copy(S.data(), S.data() + S.size(), out.data());
        return;
    }
    if (a == Activation::Softmax) {
        // Per-row stable softmax (the normalisation is per sample, so
        // rows are independent).
        for (std::size_t r = 0; r < S.rows(); ++r) {
            softmax_row(S.data() + r * n, out.data() + r * n, n);
        }
        return;
    }
    // Elementwise activations: one pass over the whole batch.
    const std::size_t total = S.rows() * n;
    const double* __restrict s = S.data();
    double* __restrict o = out.data();
    switch (a) {
        case Activation::Sigmoid:
            for (std::size_t i = 0; i < total; ++i) o[i] = 1.0 / (1.0 + std::exp(-s[i]));
            break;
        case Activation::Relu:
            for (std::size_t i = 0; i < total; ++i) o[i] = std::max(0.0, s[i]);
            break;
        case Activation::Tanh:
            for (std::size_t i = 0; i < total; ++i) o[i] = std::tanh(s[i]);
            break;
        case Activation::Linear:
        case Activation::Softmax:
            break;  // handled above
    }
}

tensor::Matrix activation_derivative_rows(Activation a, const tensor::Matrix& S) {
    tensor::Matrix out;
    activation_derivative_rows_into(a, S, out);
    return out;
}

void activation_derivative_rows_into(Activation a, const tensor::Matrix& S, tensor::Matrix& out) {
    XS_EXPECTS(&out != &S);
    if (a == Activation::Softmax) {
        throw ConfigError(
            "softmax has no elementwise derivative; use the fused softmax+crossentropy "
            "gradient in loss.hpp");
    }
    out.resize(S.rows(), S.cols());
    const std::size_t total = S.rows() * S.cols();
    const double* __restrict s = S.data();
    double* __restrict o = out.data();
    switch (a) {
        case Activation::Linear:
            for (std::size_t i = 0; i < total; ++i) o[i] = 1.0;
            break;
        case Activation::Sigmoid:
            for (std::size_t i = 0; i < total; ++i) {
                const double f = 1.0 / (1.0 + std::exp(-s[i]));
                o[i] = f * (1.0 - f);
            }
            break;
        case Activation::Relu:
            for (std::size_t i = 0; i < total; ++i) o[i] = s[i] > 0.0 ? 1.0 : 0.0;
            break;
        case Activation::Tanh:
            for (std::size_t i = 0; i < total; ++i) {
                const double t = std::tanh(s[i]);
                o[i] = 1.0 - t * t;
            }
            break;
        case Activation::Softmax:
            break;  // unreachable
    }
}

tensor::Vector activation_derivative(Activation a, const tensor::Vector& s) {
    switch (a) {
        case Activation::Linear: return tensor::Vector(s.size(), 1.0);
        case Activation::Softmax:
            throw ConfigError(
                "softmax has no elementwise derivative; use the fused softmax+crossentropy "
                "gradient in loss.hpp");
        case Activation::Sigmoid: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) {
                const double f = 1.0 / (1.0 + std::exp(-s[i]));
                out[i] = f * (1.0 - f);
            }
            return out;
        }
        case Activation::Relu: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) out[i] = s[i] > 0.0 ? 1.0 : 0.0;
            return out;
        }
        case Activation::Tanh: {
            tensor::Vector out(s.size());
            for (std::size_t i = 0; i < s.size(); ++i) {
                const double t = std::tanh(s[i]);
                out[i] = 1.0 - t * t;
            }
            return out;
        }
    }
    throw ConfigError("unhandled activation");
}

}  // namespace xbarsec::nn
