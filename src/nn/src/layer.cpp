#include "xbarsec/nn/layer.hpp"

#include <cmath>

#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

DenseLayer::DenseLayer(std::size_t outputs, std::size_t inputs, bool with_bias)
    : weights_(outputs, inputs, 0.0), bias_(with_bias ? outputs : 0, 0.0), has_bias_(with_bias) {
    XS_EXPECTS(outputs > 0 && inputs > 0);
}

DenseLayer DenseLayer::glorot(Rng& rng, std::size_t outputs, std::size_t inputs, bool with_bias) {
    DenseLayer layer(outputs, inputs, with_bias);
    const double limit = std::sqrt(6.0 / static_cast<double>(inputs + outputs));
    layer.weights_ = tensor::Matrix::random_uniform(rng, outputs, inputs, -limit, limit);
    return layer;
}

tensor::Vector DenseLayer::forward(const tensor::Vector& u) const {
    tensor::Vector s = tensor::matvec(weights_, u);
    if (has_bias_) s += bias_;
    return s;
}

tensor::Matrix DenseLayer::forward_batch(const tensor::Matrix& U) const {
    tensor::Matrix S;
    forward_batch_into(U, S);
    return S;
}

void DenseLayer::forward_batch_into(const tensor::Matrix& U, tensor::Matrix& S) const {
    XS_EXPECTS(U.cols() == inputs());
    XS_EXPECTS(&S != &U && &S != &weights_);
    S.resize(U.rows(), outputs());
    tensor::gemm(1.0, U, tensor::Op::None, weights_, tensor::Op::Transpose, 0.0, S);
    if (has_bias_) {
        for (std::size_t i = 0; i < S.rows(); ++i) {
            auto row = S.row_span(i);
            for (std::size_t j = 0; j < row.size(); ++j) row[j] += bias_[j];
        }
    }
}

}  // namespace xbarsec::nn
