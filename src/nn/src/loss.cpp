#include "xbarsec/nn/loss.hpp"

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

namespace {
// Clamp for log() in crossentropy; matches common framework epsilons.
constexpr double kEps = 1e-12;
}

std::string to_string(Loss l) {
    switch (l) {
        case Loss::Mse: return "mse";
        case Loss::CategoricalCrossentropy: return "categorical_crossentropy";
    }
    return "?";
}

Loss loss_from_string(const std::string& name) {
    if (name == "mse") return Loss::Mse;
    if (name == "categorical_crossentropy" || name == "crossentropy") {
        return Loss::CategoricalCrossentropy;
    }
    throw ConfigError("unknown loss '" + name + "'");
}

double loss_value(Loss loss, const tensor::Vector& y_hat, const tensor::Vector& target) {
    XS_EXPECTS(y_hat.size() == target.size());
    XS_EXPECTS(!y_hat.empty());
    switch (loss) {
        case Loss::Mse: {
            double acc = 0.0;
            for (std::size_t i = 0; i < y_hat.size(); ++i) {
                const double d = y_hat[i] - target[i];
                acc += d * d;
            }
            return acc / static_cast<double>(y_hat.size());
        }
        case Loss::CategoricalCrossentropy: {
            double acc = 0.0;
            for (std::size_t i = 0; i < y_hat.size(); ++i) {
                if (target[i] != 0.0) {
                    acc -= target[i] * std::log(std::max(y_hat[i], kEps));
                }
            }
            return acc;
        }
    }
    throw ConfigError("unhandled loss");
}

bool pairing_supported(Activation activation, Loss loss) {
    if (loss == Loss::CategoricalCrossentropy) return activation == Activation::Softmax;
    return activation != Activation::Softmax;  // MSE with any elementwise activation
}

tensor::Vector loss_gradient_preactivation(Activation activation, Loss loss,
                                           const tensor::Vector& s,
                                           const tensor::Vector& target) {
    XS_EXPECTS(s.size() == target.size());
    if (!pairing_supported(activation, loss)) {
        throw ConfigError("unsupported activation/loss pairing: " + to_string(activation) + "+" +
                          to_string(loss));
    }
    const tensor::Vector y_hat = apply_activation(activation, s);
    if (loss == Loss::CategoricalCrossentropy) {
        // Fused softmax + crossentropy: δ = ŷ − t.
        tensor::Vector delta(y_hat.size());
        for (std::size_t i = 0; i < delta.size(); ++i) delta[i] = y_hat[i] - target[i];
        return delta;
    }
    // MSE (mean over outputs): dL/dŷ = 2/M (ŷ − t); δ = dL/dŷ ⊙ f'(s).
    const double scale = 2.0 / static_cast<double>(y_hat.size());
    tensor::Vector delta(y_hat.size());
    const tensor::Vector fprime = activation_derivative(activation, s);
    for (std::size_t i = 0; i < delta.size(); ++i) {
        delta[i] = scale * (y_hat[i] - target[i]) * fprime[i];
    }
    return delta;
}

}  // namespace xbarsec::nn
