#include "xbarsec/nn/loss.hpp"

#include <cmath>

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

namespace {
// Clamp for log() in crossentropy; matches common framework epsilons.
constexpr double kEps = 1e-12;
}

std::string to_string(Loss l) {
    switch (l) {
        case Loss::Mse: return "mse";
        case Loss::CategoricalCrossentropy: return "categorical_crossentropy";
    }
    return "?";
}

Loss loss_from_string(const std::string& name) {
    if (name == "mse") return Loss::Mse;
    if (name == "categorical_crossentropy" || name == "crossentropy") {
        return Loss::CategoricalCrossentropy;
    }
    throw ConfigError("unknown loss '" + name + "'");
}

double loss_value(Loss loss, const tensor::Vector& y_hat, const tensor::Vector& target) {
    XS_EXPECTS(y_hat.size() == target.size());
    XS_EXPECTS(!y_hat.empty());
    switch (loss) {
        case Loss::Mse: {
            double acc = 0.0;
            for (std::size_t i = 0; i < y_hat.size(); ++i) {
                const double d = y_hat[i] - target[i];
                acc += d * d;
            }
            return acc / static_cast<double>(y_hat.size());
        }
        case Loss::CategoricalCrossentropy: {
            double acc = 0.0;
            for (std::size_t i = 0; i < y_hat.size(); ++i) {
                if (target[i] != 0.0) {
                    acc -= target[i] * std::log(std::max(y_hat[i], kEps));
                }
            }
            return acc;
        }
    }
    throw ConfigError("unhandled loss");
}

bool pairing_supported(Activation activation, Loss loss) {
    if (loss == Loss::CategoricalCrossentropy) return activation == Activation::Softmax;
    return activation != Activation::Softmax;  // MSE with any elementwise activation
}

tensor::Vector loss_gradient_preactivation(Activation activation, Loss loss,
                                           const tensor::Vector& s,
                                           const tensor::Vector& target) {
    XS_EXPECTS(s.size() == target.size());
    if (!pairing_supported(activation, loss)) {
        throw ConfigError("unsupported activation/loss pairing: " + to_string(activation) + "+" +
                          to_string(loss));
    }
    const tensor::Vector y_hat = apply_activation(activation, s);
    if (loss == Loss::CategoricalCrossentropy) {
        // Fused softmax + crossentropy: δ = ŷ − t.
        tensor::Vector delta(y_hat.size());
        for (std::size_t i = 0; i < delta.size(); ++i) delta[i] = y_hat[i] - target[i];
        return delta;
    }
    // MSE (mean over outputs): dL/dŷ = 2/M (ŷ − t); δ = dL/dŷ ⊙ f'(s).
    const double scale = 2.0 / static_cast<double>(y_hat.size());
    tensor::Vector delta(y_hat.size());
    const tensor::Vector fprime = activation_derivative(activation, s);
    for (std::size_t i = 0; i < delta.size(); ++i) {
        delta[i] = scale * (y_hat[i] - target[i]) * fprime[i];
    }
    return delta;
}

double loss_value_batch_sum(Loss loss, const tensor::Matrix& Y, const tensor::Matrix& T) {
    XS_EXPECTS(Y.rows() == T.rows() && Y.cols() == T.cols());
    XS_EXPECTS(Y.cols() > 0);
    const std::size_t n = Y.cols();
    double total = 0.0;
    if (loss == Loss::Mse) {
        const double inv_m = 1.0 / static_cast<double>(n);
        for (std::size_t r = 0; r < Y.rows(); ++r) {
            const double* __restrict y = Y.data() + r * n;
            const double* __restrict t = T.data() + r * n;
            double acc = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double d = y[i] - t[i];
                acc += d * d;
            }
            total += acc * inv_m;
        }
        return total;
    }
    for (std::size_t r = 0; r < Y.rows(); ++r) {
        const double* __restrict y = Y.data() + r * n;
        const double* __restrict t = T.data() + r * n;
        for (std::size_t i = 0; i < n; ++i) {
            if (t[i] != 0.0) total -= t[i] * std::log(std::max(y[i], kEps));
        }
    }
    return total;
}

tensor::Matrix loss_gradient_preactivation_batch(Activation activation, Loss loss,
                                                 const tensor::Matrix& S,
                                                 const tensor::Matrix& T) {
    tensor::Matrix delta;
    loss_gradient_preactivation_batch_into(activation, loss, S, T, delta);
    return delta;
}

void loss_gradient_preactivation_batch_into(Activation activation, Loss loss,
                                            const tensor::Matrix& S, const tensor::Matrix& T,
                                            tensor::Matrix& delta) {
    XS_EXPECTS(S.rows() == T.rows() && S.cols() == T.cols());
    XS_EXPECTS(S.cols() > 0);
    XS_EXPECTS(&delta != &S && &delta != &T);
    if (!pairing_supported(activation, loss)) {
        throw ConfigError("unsupported activation/loss pairing: " + to_string(activation) + "+" +
                          to_string(loss));
    }
    const std::size_t n = S.cols();
    delta.resize(S.rows(), n);

    if (loss == Loss::CategoricalCrossentropy) {
        // Fused softmax + crossentropy: δ row = softmax(s) − t, through
        // the same row kernel as the forward pass.
        for (std::size_t r = 0; r < S.rows(); ++r) {
            const double* __restrict t = T.data() + r * n;
            double* __restrict d = delta.data() + r * n;
            softmax_row(S.data() + r * n, d, n);
            for (std::size_t i = 0; i < n; ++i) d[i] -= t[i];
        }
        return;
    }

    // MSE with an elementwise activation: δ = 2/M·(f(s) − t)·f'(s),
    // evaluated with the same per-element expressions as the vector path.
    const double scale = 2.0 / static_cast<double>(n);
    const std::size_t total = S.rows() * n;
    const double* __restrict s = S.data();
    const double* __restrict t = T.data();
    double* __restrict d = delta.data();
    switch (activation) {
        case Activation::Linear:
            for (std::size_t i = 0; i < total; ++i) d[i] = scale * (s[i] - t[i]) * 1.0;
            break;
        case Activation::Sigmoid:
            for (std::size_t i = 0; i < total; ++i) {
                const double f = 1.0 / (1.0 + std::exp(-s[i]));
                d[i] = scale * (f - t[i]) * (f * (1.0 - f));
            }
            break;
        case Activation::Relu:
            for (std::size_t i = 0; i < total; ++i) {
                const double f = std::max(0.0, s[i]);
                d[i] = scale * (f - t[i]) * (s[i] > 0.0 ? 1.0 : 0.0);
            }
            break;
        case Activation::Tanh:
            for (std::size_t i = 0; i < total; ++i) {
                const double f = std::tanh(s[i]);
                d[i] = scale * (f - t[i]) * (1.0 - f * f);
            }
            break;
        case Activation::Softmax:
            throw ConfigError("unreachable: softmax+mse rejected above");
    }
}

}  // namespace xbarsec::nn
