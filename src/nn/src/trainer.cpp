#include "xbarsec/nn/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/log.hpp"
#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"
#include "xbarsec/tensor/workspace.hpp"

namespace xbarsec::nn {

tensor::Matrix batch_preactivation_delta(Activation activation, Loss loss,
                                         const tensor::Matrix& S, const tensor::Matrix& T) {
    return loss_gradient_preactivation_batch(activation, loss, S, T);
}

double mean_loss_regression(const SingleLayerNet& net, const tensor::Matrix& X,
                            const tensor::Matrix& Y) {
    XS_EXPECTS(X.rows() == Y.rows());
    XS_EXPECTS(X.rows() > 0);
    const tensor::Matrix out = net.predict_batch(X);
    return loss_value_batch_sum(net.loss_kind(), out, Y) / static_cast<double>(out.rows());
}

namespace {

TrainHistory train_impl(SingleLayerNet& net, const tensor::Matrix& X, const tensor::Matrix& Y,
                        const TrainConfig& config) {
    XS_EXPECTS(X.rows() == Y.rows());
    XS_EXPECTS(X.rows() > 0);
    XS_EXPECTS(X.cols() == net.inputs() && Y.cols() == net.outputs());
    XS_EXPECTS(config.epochs > 0 && config.batch_size > 0);

    const std::size_t n = X.rows();
    auto optimizer = make_optimizer(config.optimizer, config.learning_rate, config.momentum);
    const std::size_t w_slot = optimizer->register_parameter(net.weights().size());
    std::size_t b_slot = 0;
    if (net.layer().has_bias()) {
        b_slot = optimizer->register_parameter(net.layer().bias().size());
    }

    // Geometric LR decay (Sgd only; Adam adapts on its own).
    double decay = 1.0;
    if (config.final_lr_fraction > 0.0 && config.epochs > 1 &&
        config.optimizer == OptimizerKind::Sgd) {
        decay = std::pow(config.final_lr_fraction, 1.0 / static_cast<double>(config.epochs - 1));
    }

    Rng rng(config.shuffle_seed);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;

    TrainHistory history;
    history.epoch_loss.reserve(config.epochs);
    tensor::Matrix grad_w(net.outputs(), net.inputs(), 0.0);

    // With config.arena the minibatch temporaries live in one Workspace
    // that is reset (not freed) every iteration; arena off keeps the old
    // allocate-per-batch behaviour by constructing a fresh Workspace each
    // time. Same code path, so the arithmetic is identical bit for bit.
    tensor::Workspace arena_ws;
    tensor::Vector grad_b;  // bias gradient, reused across batches

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_acc = 0.0;
        std::size_t loss_count = 0;
        for (std::size_t lo = 0; lo < n; lo += config.batch_size) {
            const std::size_t hi = std::min(lo + config.batch_size, n);
            tensor::Workspace fresh_ws;
            tensor::Workspace& ws = config.arena ? arena_ws : fresh_ws;
            ws.reset();

            tensor::Matrix& xb = ws.matrix(hi - lo, X.cols());
            tensor::gather_rows(X, order, lo, hi, xb);
            tensor::Matrix& tb = ws.matrix(hi - lo, Y.cols());
            tensor::gather_rows(Y, order, lo, hi, tb);
            tensor::Matrix& sb = ws.matrix(hi - lo, net.outputs());
            net.layer().forward_batch_into(xb, sb);
            tensor::Matrix& delta = ws.matrix(hi - lo, net.outputs());
            loss_gradient_preactivation_batch_into(net.activation(), net.loss_kind(), sb, tb,
                                                   delta);

            // Accumulate the epoch's training loss from the same forward pass.
            tensor::Matrix& yb = ws.matrix(hi - lo, net.outputs());
            apply_activation_rows_into(net.activation(), sb, yb);
            loss_acc += loss_value_batch_sum(net.loss_kind(), yb, tb);
            loss_count += sb.rows();

            // grad_W = deltaᵀ · X_batch / batch.
            const double inv_b = 1.0 / static_cast<double>(hi - lo);
            tensor::gemm(inv_b, delta, tensor::Op::Transpose, xb, tensor::Op::None, 0.0, grad_w);
            optimizer->step(w_slot, {net.weights().data(), net.weights().size()},
                            {grad_w.data(), grad_w.size()});

            if (net.layer().has_bias()) {
                grad_b.resize(net.outputs());
                grad_b.fill(0.0);
                for (std::size_t r = 0; r < delta.rows(); ++r) {
                    const auto drow = delta.row_span(r);
                    for (std::size_t j = 0; j < drow.size(); ++j) grad_b[j] += inv_b * drow[j];
                }
                optimizer->step(b_slot, {net.layer().bias().data(), net.layer().bias().size()},
                                {grad_b.data(), grad_b.size()});
            }
        }
        history.epoch_loss.push_back(loss_acc / static_cast<double>(loss_count));
        if (auto* sgd = dynamic_cast<Sgd*>(optimizer.get()); sgd != nullptr && decay != 1.0) {
            sgd->set_learning_rate(sgd->learning_rate() * decay);
        }
        if (config.verbose) {
            log::info("epoch ", epoch + 1, "/", config.epochs, " loss=",
                      history.epoch_loss.back());
        }
    }
    return history;
}

}  // namespace

TrainHistory train(SingleLayerNet& net, const data::Dataset& dataset, const TrainConfig& config) {
    return train_impl(net, dataset.inputs(), dataset.targets(), config);
}

TrainHistory train_regression(SingleLayerNet& net, const tensor::Matrix& X,
                              const tensor::Matrix& Y, const TrainConfig& config) {
    return train_impl(net, X, Y, config);
}

}  // namespace xbarsec::nn
