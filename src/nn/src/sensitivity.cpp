#include "xbarsec/nn/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/stats/correlation.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

namespace {

constexpr std::size_t kChunk = 512;  // bounds the (chunk × inputs) gradient buffer

/// Computes the dense input-gradient block for samples [lo, hi):
/// G = Δ · W where Δ row r is ∂L/∂s for sample lo+r.
tensor::Matrix input_gradient_block(const SingleLayerNet& net, const data::Dataset& dataset,
                                    std::size_t lo, std::size_t hi) {
    tensor::Matrix X(hi - lo, dataset.input_dim());
    tensor::Matrix T(hi - lo, dataset.num_classes());
    for (std::size_t r = lo; r < hi; ++r) {
        const auto src = dataset.inputs().row_span(r);
        auto dst = X.row_span(r - lo);
        std::copy(src.begin(), src.end(), dst.begin());
        T(r - lo, static_cast<std::size_t>(dataset.label(r))) = 1.0;
    }
    const tensor::Matrix S = net.layer().forward_batch(X);
    const tensor::Matrix delta = batch_preactivation_delta(net.activation(), net.loss_kind(), S, T);
    tensor::Matrix G(hi - lo, net.inputs(), 0.0);
    tensor::gemm(1.0, delta, tensor::Op::None, net.weights(), tensor::Op::None, 0.0, G);
    return G;
}

}  // namespace

void for_each_abs_input_gradient(const SingleLayerNet& net, const data::Dataset& dataset,
                                 const std::function<void(const tensor::Vector&)>& visit) {
    XS_EXPECTS(dataset.size() > 0);
    XS_EXPECTS(dataset.input_dim() == net.inputs());
    tensor::Vector g(net.inputs());
    for (std::size_t lo = 0; lo < dataset.size(); lo += kChunk) {
        const std::size_t hi = std::min(lo + kChunk, dataset.size());
        const tensor::Matrix G = input_gradient_block(net, dataset, lo, hi);
        for (std::size_t r = 0; r < G.rows(); ++r) {
            const auto row = G.row_span(r);
            for (std::size_t j = 0; j < row.size(); ++j) g[j] = std::abs(row[j]);
            visit(g);
        }
    }
}

tensor::Vector mean_abs_input_gradient(const SingleLayerNet& net, const data::Dataset& dataset) {
    tensor::Vector acc(net.inputs(), 0.0);
    for_each_abs_input_gradient(net, dataset, [&](const tensor::Vector& g) { acc += g; });
    acc /= static_cast<double>(dataset.size());
    return acc;
}

double mean_per_sample_correlation(const SingleLayerNet& net, const data::Dataset& dataset,
                                   const tensor::Vector& reference) {
    XS_EXPECTS(reference.size() == net.inputs());
    double acc = 0.0;
    std::size_t count = 0;
    for_each_abs_input_gradient(net, dataset, [&](const tensor::Vector& g) {
        acc += stats::pearson(g, reference);
        ++count;
    });
    return acc / static_cast<double>(count);
}

double correlation_of_mean(const SingleLayerNet& net, const data::Dataset& dataset,
                           const tensor::Vector& reference) {
    XS_EXPECTS(reference.size() == net.inputs());
    return stats::pearson(mean_abs_input_gradient(net, dataset), reference);
}

tensor::Vector sensitivity_upper_bound(const SingleLayerNet& net, const tensor::Vector& u,
                                       const tensor::Vector& target) {
    // |∂L/∂u_j| = |Σ_i δ_i w_ij| ≤ Σ_i |δ_i| |w_ij| — Eq. 8 with the fused
    // δ notation (identical to the paper's form for elementwise
    // activations, and the natural generalisation for softmax+CE).
    const tensor::Vector delta = net.preactivation_delta(u, target);
    tensor::Vector bound(net.inputs(), 0.0);
    const tensor::Matrix& W = net.weights();
    for (std::size_t i = 0; i < W.rows(); ++i) {
        const double ad = std::abs(delta[i]);
        if (ad == 0.0) continue;
        const auto row = W.row_span(i);
        for (std::size_t j = 0; j < row.size(); ++j) bound[j] += ad * std::abs(row[j]);
    }
    return bound;
}

}  // namespace xbarsec::nn
