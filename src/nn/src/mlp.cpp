#include "xbarsec/nn/mlp.hpp"

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

Mlp::Mlp(Rng& rng, MlpConfig config) : config_(std::move(config)) {
    XS_EXPECTS_MSG(config_.layer_sizes.size() >= 2, "Mlp needs at least input and output sizes");
    if (!pairing_supported(config_.output_activation, config_.loss)) {
        throw ConfigError("unsupported output activation/loss pairing: " +
                          to_string(config_.output_activation) + "+" + to_string(config_.loss));
    }
    if (config_.hidden_activation == Activation::Softmax) {
        throw ConfigError("softmax is not usable as a hidden activation");
    }
    for (std::size_t l = 0; l + 1 < config_.layer_sizes.size(); ++l) {
        layers_.push_back(DenseLayer::glorot(rng, config_.layer_sizes[l + 1],
                                             config_.layer_sizes[l], config_.with_bias));
    }
}

std::size_t Mlp::inputs() const {
    XS_EXPECTS(!layers_.empty());
    return layers_.front().inputs();
}

std::size_t Mlp::outputs() const {
    XS_EXPECTS(!layers_.empty());
    return layers_.back().outputs();
}

tensor::Vector Mlp::predict(const tensor::Vector& u) const {
    XS_EXPECTS(!layers_.empty());
    tensor::Vector x = u;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const tensor::Vector s = layers_[l].forward(x);
        const Activation act =
            l + 1 == layers_.size() ? config_.output_activation : config_.hidden_activation;
        x = apply_activation(act, s);
    }
    return x;
}

int Mlp::classify(const tensor::Vector& u) const { return static_cast<int>(tensor::argmax(predict(u))); }

tensor::Matrix Mlp::predict_batch(const tensor::Matrix& U) const {
    XS_EXPECTS(!layers_.empty());
    tensor::Matrix X = U;
    for (std::size_t l = 0; l < layers_.size(); ++l) {
        const Activation act =
            l + 1 == layers_.size() ? config_.output_activation : config_.hidden_activation;
        X = apply_activation_rows(act, layers_[l].forward_batch(X));
    }
    return X;
}

std::vector<int> Mlp::classify_batch(const tensor::Matrix& U) const {
    return tensor::argmax_rows(predict_batch(U));
}

double Mlp::loss(const tensor::Vector& u, const tensor::Vector& target) const {
    return loss_value(config_.loss, predict(u), target);
}

Mlp::Gradients Mlp::backprop(const tensor::Vector& u, const tensor::Vector& target) const {
    XS_EXPECTS(!layers_.empty());
    const std::size_t L = layers_.size();

    // Forward pass with caches: inputs[l] feeds layer l; pre[l] = s_l.
    std::vector<tensor::Vector> inputs(L);
    std::vector<tensor::Vector> pre(L);
    tensor::Vector x = u;
    for (std::size_t l = 0; l < L; ++l) {
        inputs[l] = x;
        pre[l] = layers_[l].forward(x);
        const Activation act = l + 1 == L ? config_.output_activation : config_.hidden_activation;
        x = apply_activation(act, pre[l]);
    }

    Gradients g;
    g.weights.resize(L);
    g.biases.resize(L);

    // Output delta via the fused loss gradient, then walk backwards.
    tensor::Vector delta =
        loss_gradient_preactivation(config_.output_activation, config_.loss, pre[L - 1], target);
    for (std::size_t lrev = 0; lrev < L; ++lrev) {
        const std::size_t l = L - 1 - lrev;
        g.weights[l] = tensor::outer(delta, inputs[l]);
        if (layers_[l].has_bias()) g.biases[l] = delta;
        tensor::Vector upstream = tensor::matvec_transposed(layers_[l].weights(), delta);
        if (l == 0) {
            g.input = std::move(upstream);
        } else {
            const tensor::Vector fprime = activation_derivative(config_.hidden_activation, pre[l - 1]);
            delta = tensor::hadamard(upstream, fprime);
        }
    }
    return g;
}

tensor::Vector Mlp::input_gradient(const tensor::Vector& u, const tensor::Vector& target) const {
    return backprop(u, target).input;
}

}  // namespace xbarsec::nn
