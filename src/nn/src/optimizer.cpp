#include "xbarsec/nn/optimizer.hpp"

#include <cmath>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::nn {

Sgd::Sgd(double learning_rate, double momentum) : lr_(learning_rate), momentum_(momentum) {
    XS_EXPECTS(learning_rate > 0.0);
    XS_EXPECTS(momentum >= 0.0 && momentum < 1.0);
}

void Sgd::set_learning_rate(double lr) {
    XS_EXPECTS(lr > 0.0);
    lr_ = lr;
}

std::size_t Sgd::register_parameter(std::size_t element_count) {
    velocity_.emplace_back(momentum_ > 0.0 ? element_count : 0, 0.0);
    return velocity_.size() - 1;
}

void Sgd::step(std::size_t slot, std::span<double> param, std::span<const double> grad) {
    XS_EXPECTS(slot < velocity_.size());
    XS_EXPECTS(param.size() == grad.size());
    if (momentum_ == 0.0) {
        for (std::size_t i = 0; i < param.size(); ++i) param[i] -= lr_ * grad[i];
        return;
    }
    auto& v = velocity_[slot];
    XS_EXPECTS(v.size() == param.size());
    for (std::size_t i = 0; i < param.size(); ++i) {
        v[i] = momentum_ * v[i] - lr_ * grad[i];
        param[i] += v[i];
    }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
    XS_EXPECTS(learning_rate > 0.0);
    XS_EXPECTS(beta1 >= 0.0 && beta1 < 1.0);
    XS_EXPECTS(beta2 >= 0.0 && beta2 < 1.0);
    XS_EXPECTS(epsilon > 0.0);
}

std::size_t Adam::register_parameter(std::size_t element_count) {
    Slot s;
    s.m.assign(element_count, 0.0);
    s.v.assign(element_count, 0.0);
    slots_.push_back(std::move(s));
    return slots_.size() - 1;
}

void Adam::step(std::size_t slot, std::span<double> param, std::span<const double> grad) {
    XS_EXPECTS(slot < slots_.size());
    Slot& s = slots_[slot];
    XS_EXPECTS(param.size() == grad.size() && param.size() == s.m.size());
    ++s.t;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(s.t));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(s.t));
    for (std::size_t i = 0; i < param.size(); ++i) {
        s.m[i] = beta1_ * s.m[i] + (1.0 - beta1_) * grad[i];
        s.v[i] = beta2_ * s.v[i] + (1.0 - beta2_) * grad[i] * grad[i];
        const double m_hat = s.m[i] / bc1;
        const double v_hat = s.v[i] / bc2;
        param[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
}

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double learning_rate,
                                          double momentum) {
    switch (kind) {
        case OptimizerKind::Sgd: return std::make_unique<Sgd>(learning_rate, momentum);
        case OptimizerKind::Adam: return std::make_unique<Adam>(learning_rate);
    }
    XS_EXPECTS_MSG(false, "unhandled optimizer kind");
    return nullptr;
}

}  // namespace xbarsec::nn
