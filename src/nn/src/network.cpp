#include "xbarsec/nn/network.hpp"

#include "xbarsec/common/error.hpp"
#include "xbarsec/tensor/gemm.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

SingleLayerNet::SingleLayerNet(Rng& rng, std::size_t inputs, std::size_t outputs,
                               Activation activation, Loss loss, bool with_bias)
    : layer_(DenseLayer::glorot(rng, outputs, inputs, with_bias)),
      activation_(activation),
      loss_(loss) {
    if (!pairing_supported(activation, loss)) {
        throw ConfigError("unsupported activation/loss pairing: " + to_string(activation) + "+" +
                          to_string(loss));
    }
}

SingleLayerNet::SingleLayerNet(DenseLayer layer, Activation activation, Loss loss)
    : layer_(std::move(layer)), activation_(activation), loss_(loss) {
    if (!pairing_supported(activation, loss)) {
        throw ConfigError("unsupported activation/loss pairing: " + to_string(activation) + "+" +
                          to_string(loss));
    }
}

tensor::Vector SingleLayerNet::predict(const tensor::Vector& u) const {
    return apply_activation(activation_, layer_.forward(u));
}

tensor::Matrix SingleLayerNet::predict_batch(const tensor::Matrix& U) const {
    return apply_activation_rows(activation_, layer_.forward_batch(U));
}

int SingleLayerNet::classify(const tensor::Vector& u) const {
    return static_cast<int>(tensor::argmax(predict(u)));
}

double SingleLayerNet::loss(const tensor::Vector& u, const tensor::Vector& target) const {
    return loss_value(loss_, predict(u), target);
}

tensor::Vector SingleLayerNet::preactivation_delta(const tensor::Vector& u,
                                                   const tensor::Vector& target) const {
    return loss_gradient_preactivation(activation_, loss_, layer_.forward(u), target);
}

tensor::Vector SingleLayerNet::input_gradient(const tensor::Vector& u,
                                              const tensor::Vector& target) const {
    // Eq. 7: ∂L/∂u_j = Σ_i δ_i · w_ij, i.e. Wᵀ·δ. (The bias does not enter.)
    return tensor::matvec_transposed(layer_.weights(), preactivation_delta(u, target));
}

tensor::Matrix SingleLayerNet::preactivation_delta_batch(const tensor::Matrix& U,
                                                         const tensor::Matrix& T) const {
    XS_EXPECTS(U.rows() == T.rows());
    XS_EXPECTS(U.cols() == inputs() && T.cols() == outputs());
    return loss_gradient_preactivation_batch(activation_, loss_, layer_.forward_batch(U), T);
}

tensor::Matrix SingleLayerNet::input_gradient_batch(const tensor::Matrix& U,
                                                    const tensor::Matrix& T) const {
    const tensor::Matrix delta = preactivation_delta_batch(U, T);
    tensor::Matrix G(U.rows(), inputs(), 0.0);
    tensor::gemm(1.0, delta, tensor::Op::None, layer_.weights(), tensor::Op::None, 0.0, G);
    return G;
}

}  // namespace xbarsec::nn
