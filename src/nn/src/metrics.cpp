#include "xbarsec/nn/metrics.hpp"

#include <algorithm>

#include "xbarsec/nn/trainer.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::nn {

namespace {

/// Argmax per row of a batch output.
std::vector<int> batch_argmax(const tensor::Matrix& Y) {
    std::vector<int> labels(Y.rows());
    for (std::size_t r = 0; r < Y.rows(); ++r) {
        const auto row = Y.row_span(r);
        labels[r] = static_cast<int>(std::max_element(row.begin(), row.end()) - row.begin());
    }
    return labels;
}

}  // namespace

double accuracy(const SingleLayerNet& net, const tensor::Matrix& X,
                const std::vector<int>& labels) {
    XS_EXPECTS(X.rows() == labels.size());
    XS_EXPECTS(X.rows() > 0);
    // Softmax is monotone, so argmax over pre-activations suffices; use the
    // cheaper batch path without the activation.
    const tensor::Matrix S = net.layer().forward_batch(X);
    const std::vector<int> predicted = batch_argmax(S);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (predicted[i] == labels[i]) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(labels.size());
}

double accuracy(const SingleLayerNet& net, const data::Dataset& dataset) {
    return accuracy(net, dataset.inputs(), dataset.labels());
}

double mean_loss(const SingleLayerNet& net, const data::Dataset& dataset) {
    return mean_loss_regression(net, dataset.inputs(), dataset.targets());
}

tensor::Matrix confusion_matrix(const SingleLayerNet& net, const data::Dataset& dataset) {
    const std::size_t classes = dataset.num_classes();
    tensor::Matrix cm(classes, classes, 0.0);
    const tensor::Matrix S = net.layer().forward_batch(dataset.inputs());
    const std::vector<int> predicted = batch_argmax(S);
    for (std::size_t i = 0; i < dataset.size(); ++i) {
        cm(static_cast<std::size_t>(dataset.label(i)), static_cast<std::size_t>(predicted[i])) +=
            1.0;
    }
    return cm;
}

}  // namespace xbarsec::nn
