// Minibatch trainer for the Mlp extension.
//
// Shares TrainConfig with the single-layer trainer. Gradients are
// accumulated per minibatch from per-sample backprop (the MLPs in this
// library are small; clarity beats a batched backward pass here).
#pragma once

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/mlp.hpp"
#include "xbarsec/nn/trainer.hpp"

namespace xbarsec::nn {

/// Trains the MLP on a labeled dataset against its one-hot targets.
/// Returns the per-epoch mean training loss.
TrainHistory train_mlp(Mlp& mlp, const data::Dataset& dataset, const TrainConfig& config);

/// Classification accuracy of the MLP over a dataset.
double accuracy(const Mlp& mlp, const data::Dataset& dataset);

/// Accuracy on an explicit (inputs, labels) batch (adversarial sets).
double accuracy(const Mlp& mlp, const tensor::Matrix& X, const std::vector<int>& labels);

}  // namespace xbarsec::nn
