// Dense (fully-connected) layer.
//
// Weights are stored output-major, W is (M outputs × N inputs), matching
// the paper's ŷ = f(W·u) convention and the crossbar geometry (each
// weight column j is the set of devices on input line j). The bias is
// optional and off by default: a passive crossbar computes a pure
// matrix-vector product, and the paper's single-layer networks have none.
#pragma once

#include <cstdint>

#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::nn {

/// Fully-connected layer y = W·u (+ b when enabled).
class DenseLayer {
public:
    DenseLayer() = default;

    /// Zero-initialised layer.
    DenseLayer(std::size_t outputs, std::size_t inputs, bool with_bias = false);

    /// Glorot/Xavier-uniform initialisation: U(±sqrt(6/(in+out))).
    static DenseLayer glorot(Rng& rng, std::size_t outputs, std::size_t inputs,
                             bool with_bias = false);

    std::size_t inputs() const { return weights_.cols(); }
    std::size_t outputs() const { return weights_.rows(); }
    bool has_bias() const { return has_bias_; }

    const tensor::Matrix& weights() const { return weights_; }
    tensor::Matrix& weights() { return weights_; }
    const tensor::Vector& bias() const { return bias_; }
    tensor::Vector& bias() { return bias_; }

    /// Pre-activation for one sample: s = W·u (+ b).
    tensor::Vector forward(const tensor::Vector& u) const;

    /// Batch pre-activation: S = U·Wᵀ (+ b per row); U is (batch × inputs).
    tensor::Matrix forward_batch(const tensor::Matrix& U) const;

    /// Same computation into a caller-provided workspace (resized, prior
    /// contents discarded; must not alias U or the weights). Bit-identical
    /// to forward_batch — the trainers use it with Workspace slots.
    void forward_batch_into(const tensor::Matrix& U, tensor::Matrix& S) const;

private:
    tensor::Matrix weights_;
    tensor::Vector bias_;
    bool has_bias_ = false;
};

}  // namespace xbarsec::nn
