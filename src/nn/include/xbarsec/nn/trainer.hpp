// Minibatch training for SingleLayerNet (classification and regression).
//
// The regression entry point (arbitrary real-valued target matrix) is what
// the Section-IV surrogates use when fitting raw oracle outputs; the
// classification entry point trains the oracles themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/network.hpp"
#include "xbarsec/nn/optimizer.hpp"

namespace xbarsec::nn {

/// Hyperparameters for train()/train_regression().
struct TrainConfig {
    std::size_t epochs = 25;
    std::size_t batch_size = 32;
    double learning_rate = 0.05;
    double momentum = 0.9;
    OptimizerKind optimizer = OptimizerKind::Sgd;
    std::uint64_t shuffle_seed = 7;
    /// When > 0, learning rate decays geometrically to
    /// learning_rate · final_lr_fraction across epochs (Sgd only).
    double final_lr_fraction = 0.0;
    bool verbose = false;
    /// Draw per-minibatch temporaries (gathers, pre-activations, deltas)
    /// from a reused Workspace arena instead of allocating fresh each
    /// iteration. Purely a performance toggle: the trained weights are
    /// bit-identical either way (tested by test_arena.cpp).
    bool arena = true;
};

/// Per-epoch trace returned by the trainers.
struct TrainHistory {
    std::vector<double> epoch_loss;  ///< mean per-sample training loss

    double final_loss() const { return epoch_loss.empty() ? 0.0 : epoch_loss.back(); }
};

/// Trains on a labeled dataset against its one-hot targets.
TrainHistory train(SingleLayerNet& net, const data::Dataset& dataset, const TrainConfig& config);

/// Trains against an arbitrary real-valued target matrix (rows aligned
/// with X's rows). Used for surrogate/regression fitting.
TrainHistory train_regression(SingleLayerNet& net, const tensor::Matrix& X,
                              const tensor::Matrix& Y, const TrainConfig& config);

/// Batch version of loss_gradient_preactivation: row r of the result is
/// δ for sample r. Exposed for the surrogate trainer (attack module),
/// which extends it with the power-loss term.
tensor::Matrix batch_preactivation_delta(Activation activation, Loss loss,
                                         const tensor::Matrix& S, const tensor::Matrix& T);

/// Mean per-sample loss of the net over (X, Y).
double mean_loss_regression(const SingleLayerNet& net, const tensor::Matrix& X,
                            const tensor::Matrix& Y);

}  // namespace xbarsec::nn
