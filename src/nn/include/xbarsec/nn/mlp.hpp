// Multi-layer perceptron — the paper's stated future-work extension.
//
// The paper studies single-layer networks and names multi-layer models as
// future work; Mlp implements that extension so the library's attacks can
// be exercised against deeper models (see examples/multilayer_extension).
// It is intentionally excluded from the paper-reproduction benches.
#pragma once

#include <vector>

#include "xbarsec/nn/activation.hpp"
#include "xbarsec/nn/layer.hpp"
#include "xbarsec/nn/loss.hpp"

namespace xbarsec::nn {

/// Architecture description for Mlp.
struct MlpConfig {
    /// Sizes including input and output: {784, 128, 10} is one hidden layer.
    std::vector<std::size_t> layer_sizes;
    Activation hidden_activation = Activation::Relu;
    Activation output_activation = Activation::Softmax;
    Loss loss = Loss::CategoricalCrossentropy;
    bool with_bias = true;
};

/// Feed-forward fully-connected network with backprop.
class Mlp {
public:
    Mlp() = default;

    /// Glorot-initialised network; requires >= 2 layer sizes and a
    /// supported (output_activation, loss) pairing.
    Mlp(Rng& rng, MlpConfig config);

    std::size_t inputs() const;
    std::size_t outputs() const;
    std::size_t depth() const { return layers_.size(); }
    const MlpConfig& config() const { return config_; }

    const std::vector<DenseLayer>& layers() const { return layers_; }
    std::vector<DenseLayer>& layers() { return layers_; }

    tensor::Vector predict(const tensor::Vector& u) const;
    int classify(const tensor::Vector& u) const;
    double loss(const tensor::Vector& u, const tensor::Vector& target) const;

    /// Batched forward pass: row r is predict(U.row(r)), run as one GEMM
    /// chain per layer.
    tensor::Matrix predict_batch(const tensor::Matrix& U) const;

    /// Batched classification: out[r] = classify(U.row(r)).
    std::vector<int> classify_batch(const tensor::Matrix& U) const;

    /// Per-layer gradients from one sample, plus the input gradient.
    struct Gradients {
        std::vector<tensor::Matrix> weights;
        std::vector<tensor::Vector> biases;  ///< empty vectors when no bias
        tensor::Vector input;                ///< ∂L/∂u
    };

    /// Full backward pass for one (input, target) pair.
    Gradients backprop(const tensor::Vector& u, const tensor::Vector& target) const;

    /// ∂L/∂u only (convenience wrapper over backprop).
    tensor::Vector input_gradient(const tensor::Vector& u, const tensor::Vector& target) const;

private:
    std::vector<DenseLayer> layers_;
    MlpConfig config_;
};

}  // namespace xbarsec::nn
