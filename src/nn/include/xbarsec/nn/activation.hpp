// Output/hidden activation functions.
//
// The paper uses two output configurations: Linear (with MSE loss) and
// Softmax (with categorical crossentropy). Sigmoid/ReLU/Tanh are provided
// for the multi-layer extension. Softmax is vector-valued; the others act
// elementwise.
#pragma once

#include <string>

#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::nn {

enum class Activation { Linear, Softmax, Sigmoid, Relu, Tanh };

/// Human-readable name ("linear", "softmax", ...).
std::string to_string(Activation a);

/// Parses the names produced by to_string. Throws ConfigError on unknown.
Activation activation_from_string(const std::string& name);

/// Applies the activation to a pre-activation vector.
tensor::Vector apply_activation(Activation a, const tensor::Vector& s);

/// Row-wise application for a batch (each row is one sample's
/// pre-activation).
tensor::Matrix apply_activation_rows(Activation a, const tensor::Matrix& S);

/// Same computation into a caller-provided workspace (resized to S's
/// shape, prior contents discarded). `out` must not alias S. The trainers
/// use this with Workspace slots so the per-minibatch hot loop performs no
/// allocation; results are bit-identical to apply_activation_rows.
void apply_activation_rows_into(Activation a, const tensor::Matrix& S, tensor::Matrix& out);

/// Elementwise derivative f'(s) evaluated from the pre-activation value.
/// Not defined for Softmax (its Jacobian is not elementwise) — throws
/// ConfigError; softmax gradients are fused with crossentropy in loss.hpp.
tensor::Vector activation_derivative(Activation a, const tensor::Vector& s);

/// Row-wise f'(S) for a batch of pre-activations (same domain rules as
/// activation_derivative). The batched-backprop companion of
/// apply_activation_rows.
tensor::Matrix activation_derivative_rows(Activation a, const tensor::Matrix& S);

/// Workspace form of activation_derivative_rows (same contract as
/// apply_activation_rows_into).
void activation_derivative_rows_into(Activation a, const tensor::Matrix& S, tensor::Matrix& out);

/// Numerically stable softmax of one vector.
tensor::Vector softmax(const tensor::Vector& s);

/// Stable softmax of one contiguous row into `out` (may alias `s`'s
/// buffer only if identical). The single formulation shared by the
/// forward pass and the fused softmax+crossentropy gradient — keeping
/// them numerically in lockstep.
void softmax_row(const double* s, double* out, std::size_t n);

}  // namespace xbarsec::nn
