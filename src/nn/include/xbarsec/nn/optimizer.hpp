// Gradient-descent optimizers.
//
// Optimizers own per-parameter state (velocity / moment estimates) keyed
// by a slot id handed out at registration, so the same instance can update
// several tensors (weights + biases, or multiple layers) consistently.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

namespace xbarsec::nn {

/// Abstract optimizer over flat parameter arrays.
class Optimizer {
public:
    virtual ~Optimizer() = default;

    /// Allocates state for a parameter tensor of `element_count` elements;
    /// returns the slot to pass to step().
    virtual std::size_t register_parameter(std::size_t element_count) = 0;

    /// One update: param ← param − update(grad). Sizes must match the
    /// registered element count.
    virtual void step(std::size_t slot, std::span<double> param,
                      std::span<const double> grad) = 0;
};

/// Plain SGD with optional classical momentum.
class Sgd final : public Optimizer {
public:
    explicit Sgd(double learning_rate, double momentum = 0.0);

    std::size_t register_parameter(std::size_t element_count) override;
    void step(std::size_t slot, std::span<double> param, std::span<const double> grad) override;

    double learning_rate() const { return lr_; }
    void set_learning_rate(double lr);

private:
    double lr_;
    double momentum_;
    std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias-corrected moment estimates.
class Adam final : public Optimizer {
public:
    explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                  double epsilon = 1e-8);

    std::size_t register_parameter(std::size_t element_count) override;
    void step(std::size_t slot, std::span<double> param, std::span<const double> grad) override;

private:
    struct Slot {
        std::vector<double> m;
        std::vector<double> v;
        long long t = 0;
    };

    double lr_, beta1_, beta2_, eps_;
    std::vector<Slot> slots_;
};

/// Factory selector used by TrainConfig.
enum class OptimizerKind { Sgd, Adam };

/// Builds an optimizer of the given kind. `momentum` only applies to Sgd.
std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double learning_rate,
                                          double momentum);

}  // namespace xbarsec::nn
