// Evaluation metrics.
#pragma once

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/network.hpp"

namespace xbarsec::nn {

/// Fraction of dataset samples whose argmax prediction equals the label.
double accuracy(const SingleLayerNet& net, const data::Dataset& dataset);

/// Accuracy on an explicit (inputs, labels) pair; rows of X align with
/// labels. Used for adversarial test sets where inputs were perturbed.
double accuracy(const SingleLayerNet& net, const tensor::Matrix& X, const std::vector<int>& labels);

/// Mean per-sample loss over the dataset's one-hot targets.
double mean_loss(const SingleLayerNet& net, const data::Dataset& dataset);

/// Row = true class, column = predicted class, counts.
tensor::Matrix confusion_matrix(const SingleLayerNet& net, const data::Dataset& dataset);

}  // namespace xbarsec::nn
