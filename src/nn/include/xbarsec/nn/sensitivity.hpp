// Input-sensitivity analysis (Section III of the paper).
//
// The paper compares |∂L/∂u_j| — the magnitude of the loss gradient with
// respect to each input, averaged over a dataset — against the column
// 1-norms ‖W[:,j]‖₁ that the power side channel leaks. These helpers
// compute the dataset-level sensitivity map (Figure 3), the per-sample
// correlation statistics (Table I), and the Eq. 8 upper bound.
#pragma once

#include <functional>

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/nn/network.hpp"

namespace xbarsec::nn {

/// Mean over the dataset of the absolute input gradient:
/// map[j] = E[|∂L/∂u_j|]. This is Figure 3(a,c,e,g).
tensor::Vector mean_abs_input_gradient(const SingleLayerNet& net, const data::Dataset& dataset);

/// Per-sample streaming visit of |∂L/∂u| (batched internally). The
/// callback receives each sample's absolute-gradient vector.
void for_each_abs_input_gradient(const SingleLayerNet& net, const data::Dataset& dataset,
                                 const std::function<void(const tensor::Vector&)>& visit);

/// Table I "Mean Correlation": the average over samples of
/// pearson(|∂L/∂u| for that sample, reference).
double mean_per_sample_correlation(const SingleLayerNet& net, const data::Dataset& dataset,
                                   const tensor::Vector& reference);

/// Table I "Correlation of Mean": pearson(mean |∂L/∂u| map, reference).
double correlation_of_mean(const SingleLayerNet& net, const data::Dataset& dataset,
                           const tensor::Vector& reference);

/// Eq. 8's right-hand side for one sample:
/// bound[j] = Σ_i |∂L/∂ŷ_i · f'(s_i)| · |w_ij| (with the softmax+CE case
/// using the fused |δ_i| form). Satisfies |∂L/∂u_j| ≤ bound[j].
tensor::Vector sensitivity_upper_bound(const SingleLayerNet& net, const tensor::Vector& u,
                                       const tensor::Vector& target);

}  // namespace xbarsec::nn
