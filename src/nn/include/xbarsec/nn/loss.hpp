// Loss functions and their gradients.
//
// Supported pairings (the paper's two configurations, plus elementwise
// activations for the MLP extension):
//   * Mse with Linear/Sigmoid/Relu/Tanh outputs;
//   * CategoricalCrossentropy with Softmax (fused gradient ŷ − t).
// MSE is averaged over the output dimension (Keras convention, which the
// paper's tooling follows), so gradients carry a 2/M factor.
#pragma once

#include <string>

#include "xbarsec/nn/activation.hpp"
#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::nn {

enum class Loss { Mse, CategoricalCrossentropy };

std::string to_string(Loss l);
Loss loss_from_string(const std::string& name);

/// Loss value for one sample given the post-activation output.
double loss_value(Loss loss, const tensor::Vector& y_hat, const tensor::Vector& target);

/// Gradient of the loss with respect to the *pre-activation* s for the
/// given activation/loss pairing. This is the δ vector backpropagated
/// into weight and input gradients. Throws ConfigError on an unsupported
/// pairing (softmax with MSE).
tensor::Vector loss_gradient_preactivation(Activation activation, Loss loss,
                                           const tensor::Vector& s,
                                           const tensor::Vector& target);

/// True when the pairing is supported by loss_gradient_preactivation.
bool pairing_supported(Activation activation, Loss loss);

// ---- batched variants -------------------------------------------------------
//
// Row r of each matrix is one sample. These are the minibatch hot paths —
// they compute row-wise without materialising per-sample Vectors, so the
// trainers touch each batch element exactly once.

/// Sum of per-sample losses: Σ_r loss_value(loss, Y.row(r), T.row(r)).
/// Y holds post-activation outputs.
double loss_value_batch_sum(Loss loss, const tensor::Matrix& Y, const tensor::Matrix& T);

/// Batched δ: row r is loss_gradient_preactivation(activation, loss,
/// S.row(r), T.row(r)). S holds pre-activations.
tensor::Matrix loss_gradient_preactivation_batch(Activation activation, Loss loss,
                                                 const tensor::Matrix& S,
                                                 const tensor::Matrix& T);

/// Same δ into a caller-provided workspace (resized, contents discarded;
/// must alias neither S nor T). Bit-identical to the returning form — the
/// trainers use it with Workspace slots to keep the minibatch loop
/// allocation-free.
void loss_gradient_preactivation_batch_into(Activation activation, Loss loss,
                                            const tensor::Matrix& S, const tensor::Matrix& T,
                                            tensor::Matrix& delta);

}  // namespace xbarsec::nn
