// Single-layer neural network ŷ = f(W·u) — the paper's model class.
//
// The network couples a DenseLayer with an output activation and a loss,
// and exposes exactly the quantities the attacks consume:
//   * predict / predict_batch / classify          (inference)
//   * loss                                        (per-sample loss value)
//   * input_gradient                              (Eq. 7's ∂L/∂u)
//   * preactivation_delta                         (δ = ∂L/∂s, for training)
#pragma once

#include "xbarsec/nn/activation.hpp"
#include "xbarsec/nn/layer.hpp"
#include "xbarsec/nn/loss.hpp"

namespace xbarsec::nn {

/// The paper's single-layer model with its training loss attached.
class SingleLayerNet {
public:
    SingleLayerNet() = default;

    /// Glorot-initialised network. The (activation, loss) pairing must be
    /// supported (see loss.hpp); the paper uses Linear+Mse and
    /// Softmax+CategoricalCrossentropy.
    SingleLayerNet(Rng& rng, std::size_t inputs, std::size_t outputs, Activation activation,
                   Loss loss, bool with_bias = false);

    /// Wraps an existing layer (e.g. one recovered by an attack).
    SingleLayerNet(DenseLayer layer, Activation activation, Loss loss);

    std::size_t inputs() const { return layer_.inputs(); }
    std::size_t outputs() const { return layer_.outputs(); }
    Activation activation() const { return activation_; }
    Loss loss_kind() const { return loss_; }

    const DenseLayer& layer() const { return layer_; }
    DenseLayer& layer() { return layer_; }
    const tensor::Matrix& weights() const { return layer_.weights(); }
    tensor::Matrix& weights() { return layer_.weights(); }

    /// Pre-activation s = W·u (+b).
    tensor::Vector preactivation(const tensor::Vector& u) const { return layer_.forward(u); }

    /// Post-activation output ŷ = f(s).
    tensor::Vector predict(const tensor::Vector& u) const;

    /// Batch outputs, one row per sample.
    tensor::Matrix predict_batch(const tensor::Matrix& U) const;

    /// Argmax class label of ŷ.
    int classify(const tensor::Vector& u) const;

    /// Per-sample loss L(f(W·u), target).
    double loss(const tensor::Vector& u, const tensor::Vector& target) const;

    /// δ = ∂L/∂s for one sample (used by trainers).
    tensor::Vector preactivation_delta(const tensor::Vector& u, const tensor::Vector& target) const;

    /// Batched δ: row r is preactivation_delta(U.row(r), T.row(r)),
    /// computed through the batch forward GEMM.
    tensor::Matrix preactivation_delta_batch(const tensor::Matrix& U,
                                             const tensor::Matrix& T) const;

    /// Eq. 7: ∂L/∂u = Wᵀ·δ. The gradient the white-box "Worst" attack and
    /// the FGSM baselines use.
    tensor::Vector input_gradient(const tensor::Vector& u, const tensor::Vector& target) const;

    /// Batched Eq. 7: row r is input_gradient(U.row(r), T.row(r)). One
    /// forward GEMM plus one Δ·W GEMM — the whole-testset gradient kernel
    /// behind the batched FGSM/PGD attack loops.
    tensor::Matrix input_gradient_batch(const tensor::Matrix& U, const tensor::Matrix& T) const;

private:
    DenseLayer layer_;
    Activation activation_ = Activation::Linear;
    Loss loss_ = Loss::Mse;
};

}  // namespace xbarsec::nn
