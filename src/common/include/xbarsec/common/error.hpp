// Exception hierarchy for recoverable runtime errors (IO, parsing,
// configuration). Programming errors use contracts.hpp instead.
#pragma once

#include <stdexcept>
#include <string>

namespace xbarsec {

/// Base class for all recoverable xbarsec runtime errors.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// File or stream IO failed (missing file, short read, write failure).
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error("IO error: " + what) {}
};

/// Input bytes/text did not conform to the expected format.
class ParseError : public Error {
public:
    explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A user-supplied configuration value is out of range or inconsistent.
class ConfigError : public Error {
public:
    explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

}  // namespace xbarsec
