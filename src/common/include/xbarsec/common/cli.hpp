// Small command-line flag parser for benches and examples.
//
// Accepted forms: --name=value, --name value, and bare --name (boolean
// true). Unknown flags are an error so typos do not silently run the
// wrong experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xbarsec {

/// Declarative flag registry + parser.
class Cli {
public:
    /// `program_summary` is printed by help().
    explicit Cli(std::string program_summary) : summary_(std::move(program_summary)) {}

    /// Registers a flag with a default value (rendered in help output).
    void flag(const std::string& name, const std::string& default_value,
              const std::string& help);

    /// Parses argv. Throws ConfigError on unknown flags or malformed input.
    /// Returns false if --help was requested (help text already printed).
    bool parse(int argc, const char* const* argv);

    /// Typed accessors; throw ConfigError when conversion fails.
    std::string str(const std::string& name) const;
    long long integer(const std::string& name) const;
    double real(const std::string& name) const;
    bool boolean(const std::string& name) const;

    /// Comma-separated list of doubles (e.g. "0,0.002,0.01").
    std::vector<double> real_list(const std::string& name) const;

    /// Comma-separated list of integers (e.g. "2,10,50").
    std::vector<long long> integer_list(const std::string& name) const;

    /// True when the user explicitly supplied the flag.
    bool provided(const std::string& name) const;

    /// Renders the help text.
    std::string help() const;

private:
    struct Flag {
        std::string default_value;
        std::string help;
        std::optional<std::string> value;
    };

    const Flag& find(const std::string& name) const;

    std::string summary_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;  // help output in registration order
};

}  // namespace xbarsec
