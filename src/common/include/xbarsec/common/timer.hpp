// Wall-clock timing helper for bench progress reporting.
#pragma once

#include <chrono>

namespace xbarsec {

/// Measures wall-clock time from construction (or the last reset()).
class WallTimer {
public:
    WallTimer() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    /// Elapsed seconds since construction/reset.
    double seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /// Elapsed milliseconds since construction/reset.
    double milliseconds() const { return seconds() * 1e3; }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace xbarsec
