// Deterministic, self-contained pseudo-random number generation.
//
// We do not use <random> distributions because their output is
// implementation-defined: the same seed gives different streams on
// libstdc++ vs libc++, which would make the paper-reproduction benches
// non-reproducible across platforms. Instead we implement:
//   * SplitMix64      — seed expansion (Steele, Lea & Flood 2014)
//   * Xoshiro256**    — main generator (Blackman & Vigna 2018)
//   * uniform / normal / bernoulli / integer helpers with fixed algorithms
// All xbarsec components take an explicit Rng& (or a seed); there is no
// global generator.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec {

/// SplitMix64: tiny generator used to expand a 64-bit seed into the
/// 256-bit state of Xoshiro256**. Also usable standalone for cheap
/// decorrelated stream splitting.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG with 256-bit state.
/// Satisfies (a subset of) the UniformRandomBitGenerator requirements.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the 256-bit state by running SplitMix64 on `seed`.
    explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ull) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        SplitMix64 sm(seed);
        for (auto& s : state_) s = sm.next();
        // A state of all zeros is invalid for xoshiro; SplitMix64 cannot
        // produce four consecutive zeros, but keep the guard for safety.
        if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    result_type operator()() { return next(); }

    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1) with 53 bits of precision.
    double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) {
        XS_EXPECTS(lo <= hi);
        return lo + (hi - lo) * uniform();
    }

    /// Standard normal deviate via the Marsaglia polar method (deterministic
    /// given the stream; one spare value is cached).
    double normal() {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u, v, s;
        do {
            u = 2.0 * uniform() - 1.0;
            v = 2.0 * uniform() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        const double m = std::sqrt(-2.0 * std::log(s) / s);
        spare_ = v * m;
        has_spare_ = true;
        return u * m;
    }

    /// Normal deviate with the given mean and standard deviation.
    double normal(double mean, double stddev) {
        XS_EXPECTS(stddev >= 0.0);
        return mean + stddev * normal();
    }

    /// Uniform integer in [0, n). Uses rejection sampling, so it is exactly
    /// uniform (no modulo bias).
    std::uint64_t below(std::uint64_t n) {
        XS_EXPECTS(n > 0);
        const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) return r % n;
        }
    }

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t integer(std::int64_t lo, std::int64_t hi) {
        XS_EXPECTS(lo <= hi);
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /// Bernoulli trial with success probability p.
    bool bernoulli(double p) {
        XS_EXPECTS(p >= 0.0 && p <= 1.0);
        return uniform() < p;
    }

    /// Random sign: +1 with probability 1/2, otherwise -1.
    double sign() { return (next() & 1ull) ? 1.0 : -1.0; }

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(below(i));
            using std::swap;
            swap(v[i - 1], v[j]);
        }
    }

    /// Derives an independent child generator; used to give each parallel
    /// task its own decorrelated stream.
    Rng split() { return Rng(next() ^ 0x9E3779B97F4A7C15ull); }

    /// Counter-based standard normal deviate: a pure function of
    /// (seed, ctr, idx) with no generator state. See counter_rng below —
    /// this alias exists so call sites read Rng::normal_at(seed, r, i).
    static double normal_at(std::uint64_t seed, std::uint64_t ctr, std::uint64_t idx);

private:
    static std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4]{};
    bool has_spare_ = false;
    double spare_ = 0.0;
};

// ---- counter-based (stateless) streams --------------------------------------
//
// Some consumers cannot use a sequential generator: the crossbar's read
// noise, for example, must be a pure function of (seed, measurement, element)
// so that batched measurements can shard across a ThreadPool — or be split
// into sub-batches — and still reproduce the serial stream bit for bit.
// These helpers hash the three coordinates through SplitMix64 finalisation
// steps (each input word goes through a full avalanche before the next is
// mixed in), then derive the deviate with a fixed algorithm.

namespace counter_rng {

/// Avalanching mix of (seed, ctr, idx) into one 64-bit word.
inline std::uint64_t hash_at(std::uint64_t seed, std::uint64_t ctr, std::uint64_t idx) {
    auto mix = [](std::uint64_t z) {
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    };
    std::uint64_t h = mix(seed + 0x9E3779B97F4A7C15ull);
    h = mix(h ^ (ctr + 0x9E3779B97F4A7C15ull));
    h = mix(h ^ (idx + 0x9E3779B97F4A7C15ull));
    return h;
}

/// Uniform double in (0, 1] at coordinate (seed, ctr, idx) — the half-open
/// end excludes 0 so log() below is always finite.
inline double uniform_at(std::uint64_t seed, std::uint64_t ctr, std::uint64_t idx) {
    return (static_cast<double>(hash_at(seed, ctr, idx) >> 11) + 1.0) * 0x1.0p-53;
}

/// Standard normal deviate at coordinate (seed, ctr, idx) via Box-Muller
/// (no rejection loop, so exactly one deviate per coordinate). Independent
/// coordinates give independent deviates; the same coordinate always gives
/// the same value.
inline double normal_at(std::uint64_t seed, std::uint64_t ctr, std::uint64_t idx) {
    const double u1 = uniform_at(seed, ctr, idx);
    // A decorrelated second uniform from the same coordinate: re-hash with
    // a fixed tweak on the seed word.
    const double u2 = uniform_at(seed ^ 0xA5A5A5A55A5A5A5Aull, ctr, idx);
    constexpr double two_pi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

}  // namespace counter_rng

inline double Rng::normal_at(std::uint64_t seed, std::uint64_t ctr, std::uint64_t idx) {
    return counter_rng::normal_at(seed, ctr, idx);
}

/// Returns `k` distinct indices drawn uniformly from [0, n) in random order
/// (partial Fisher-Yates). Requires k <= n.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n, std::size_t k);

/// Returns a random permutation of [0, n).
std::vector<std::size_t> random_permutation(Rng& rng, std::size_t n);

}  // namespace xbarsec
