// Tabular result output used by the paper-reproduction benches.
//
// A Table is a column-labelled grid of cells (strings or numbers). It can
// render itself as GitHub-flavoured markdown (what the benches print to
// stdout, mirroring the paper's tables) and as CSV (what they write to
// bench_results/ for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace xbarsec {

/// Column-labelled result table with markdown and CSV rendering.
class Table {
public:
    Table() = default;
    explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

    /// Replaces the header row.
    void set_header(std::vector<std::string> header) { header_ = std::move(header); }

    /// Starts a new (empty) row and returns its index.
    std::size_t begin_row();

    /// Appends a string cell to the last row.
    void add(std::string cell);

    /// Appends a formatted numeric cell (fixed precision).
    void add(double value, int precision = 4);

    /// Appends an integer cell.
    void add(long long value);

    /// Convenience: appends a full row of string cells.
    void add_row(std::vector<std::string> cells);

    std::size_t rows() const { return cells_.size(); }
    std::size_t columns() const { return header_.size(); }
    const std::vector<std::string>& header() const { return header_; }
    const std::vector<std::string>& row(std::size_t i) const;

    /// Renders as a GitHub-flavoured markdown table with aligned columns.
    std::string to_markdown() const;

    /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline
    /// are quoted; quotes doubled).
    std::string to_csv() const;

    /// Writes the CSV rendering to `path`, creating parent directories.
    /// Throws IoError on failure.
    void write_csv(const std::string& path) const;

    /// Formats a double with fixed precision (shared with benches so cell
    /// text and log text match).
    static std::string format_number(double value, int precision);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> cells_;
};

/// Prints the markdown rendering followed by a newline.
std::ostream& operator<<(std::ostream& os, const Table& table);

}  // namespace xbarsec
