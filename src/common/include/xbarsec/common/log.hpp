// Minimal leveled logger. Writes to stderr; the level is a process-wide
// setting (benches default to Info, tests to Warn). Not a general logging
// framework — just enough for the library to narrate long experiments.
#pragma once

#include <sstream>
#include <string>

namespace xbarsec {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

namespace log {

/// Sets the global log threshold. Thread-safe (atomic store).
void set_level(LogLevel level);

/// Current global log threshold.
LogLevel level();

/// Emits `message` at `level` if it passes the threshold. Output format:
/// "[xbarsec:LEVEL] message\n". Thread-safe (single write call).
void write(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}
}  // namespace detail

template <typename... Args>
void debug(Args&&... args) {
    if (level() <= LogLevel::Debug) write(LogLevel::Debug, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void info(Args&&... args) {
    if (level() <= LogLevel::Info) write(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void warn(Args&&... args) {
    if (level() <= LogLevel::Warn) write(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void error(Args&&... args) {
    if (level() <= LogLevel::Error) write(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

}  // namespace log
}  // namespace xbarsec
