// Arena allocator for hot-loop scratch memory.
//
// The kernel layer's pack panels and the trainers' per-minibatch
// temporaries are allocated, used for microseconds, and thrown away —
// exactly the pattern a general-purpose heap is worst at (a 200 KB gather
// buffer is above glibc's mmap threshold, so a fresh allocation every
// minibatch is an mmap/munmap pair plus page faults). An Arena is a bump
// pointer over cache-line-aligned chunks: allocation is a pointer add,
// reset() makes the memory reusable without returning it to the OS, and
// Scope gives stack-discipline (LIFO) reclamation for nested callers.
//
// An Arena is NOT thread-safe — it is meant to be thread-private. Code
// running on ThreadPool workers uses thread_arena(), one arena per thread,
// so nested parallel_for bodies can allocate freely without overlapping
// (tested by tests/test_arena.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec {

/// Bump allocator over a growable list of aligned chunks. Pointers stay
/// valid until the enclosing Scope ends (or reset() is called): growth
/// appends a chunk, it never moves existing ones.
class Arena {
public:
    /// Every allocation is aligned to at least this (one cache line, and
    /// enough for any SIMD load the kernels issue).
    static constexpr std::size_t kAlign = 64;

    /// `initial_bytes` sizes the first chunk, allocated lazily on first use.
    explicit Arena(std::size_t initial_bytes = 1 << 16) : next_chunk_bytes_(initial_bytes) {
        XS_EXPECTS(initial_bytes > 0);
    }

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /// Returns `bytes` of kAlign-aligned storage (uninitialized).
    void* allocate(std::size_t bytes);

    /// Typed convenience: `count` trivially-destructible T's, uninitialized.
    template <typename T>
    std::span<T> alloc(std::size_t count) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena never runs destructors — only trivial T's allowed");
        static_assert(alignof(T) <= kAlign);
        return {static_cast<T*>(allocate(count * sizeof(T))), count};
    }

    /// Rewinds every chunk to empty. Capacity is retained; previously
    /// returned pointers become dangling.
    void reset();

    std::size_t bytes_in_use() const;
    std::size_t bytes_reserved() const;

    /// LIFO mark/rewind: everything allocated while a Scope is alive is
    /// reclaimed when it is destroyed. Scopes on one arena must nest.
    class Scope {
    public:
        explicit Scope(Arena& arena)
            : arena_(arena), chunk_(arena.active_), used_(arena.active_used()) {}
        ~Scope() { arena_.rewind(chunk_, used_); }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Arena& arena_;
        std::size_t chunk_;
        std::size_t used_;
    };

private:
    struct Chunk {
        std::unique_ptr<std::byte[]> storage;  ///< raw block, over-allocated
        std::byte* base = nullptr;             ///< kAlign-aligned start
        std::size_t size = 0;                  ///< usable bytes from base
        std::size_t used = 0;
    };

    std::size_t active_used() const { return active_ < chunks_.size() ? chunks_[active_].used : 0; }
    void rewind(std::size_t chunk, std::size_t used);

    std::vector<Chunk> chunks_;
    std::size_t active_ = 0;  ///< index of the chunk currently bumping
    std::size_t next_chunk_bytes_;
};

/// The calling thread's private arena (thread_local). The kernel layer's
/// pack buffers draw from it under a Scope, so concurrent GEMMs on
/// different pool workers never share scratch memory.
Arena& thread_arena();

}  // namespace xbarsec
