// Fixed-size thread pool and a deterministic parallel_for.
//
// Benches parallelise over independent experiment runs (seeds), so the
// parallel_for contract is: the body is invoked exactly once per index,
// indices are distributed dynamically, and exceptions from the body are
// captured and rethrown on the calling thread (first one wins).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace xbarsec {

/// A fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
public:
    /// Spawns `threads` workers (defaults to hardware_concurrency, min 1).
    explicit ThreadPool(std::size_t threads = 0);

    /// Drains the queue and joins all workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task for execution. Never blocks.
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished executing.
    void wait_idle();

    std::size_t thread_count() const { return workers_.size(); }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

/// Runs body(i) for every i in [0, count) using `pool`'s workers plus the
/// calling thread. Blocks until all iterations are done. If any invocation
/// throws, the first exception is rethrown after all iterations complete
/// or are abandoned.
///
/// Nesting-safe: completion is tracked per call (not via pool-wide
/// idleness), and the calling thread participates, so a parallel_for
/// issued from inside another parallel_for's body — e.g. a pooled GEMM
/// inside a pooled fig5 run — always makes progress and never deadlocks;
/// it merely degrades toward serial when all workers are busy.
void parallel_for(ThreadPool& pool, std::size_t count, const std::function<void(std::size_t)>& body);

/// Convenience overload: runs on an internal pool sized to the hardware.
/// Suitable for benches; library code should accept a ThreadPool&.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body);

}  // namespace xbarsec
