// Contract checking for xbarsec.
//
// Public API boundaries validate their inputs with XS_EXPECTS and promise
// results with XS_ENSURES. Violations throw xbarsec::ContractViolation so
// that misuse is observable (and testable) rather than undefined behaviour.
// Internal hot loops may use XS_ASSERT, which compiles away in release
// builds when XBARSEC_NO_ASSERT is defined.
#pragma once

#include <stdexcept>
#include <string>

namespace xbarsec {

/// Thrown when a precondition (XS_EXPECTS) or postcondition (XS_ENSURES)
/// of a public API is violated. Carries the failing expression and location.
class ContractViolation : public std::logic_error {
public:
    ContractViolation(const char* kind, const char* expr, const char* file, int line,
                      const std::string& message)
        : std::logic_error(format(kind, expr, file, line, message)) {}

private:
    static std::string format(const char* kind, const char* expr, const char* file, int line,
                              const std::string& message) {
        std::string out;
        out += kind;
        out += " violated: (";
        out += expr;
        out += ") at ";
        out += file;
        out += ":";
        out += std::to_string(line);
        if (!message.empty()) {
            out += " — ";
            out += message;
        }
        return out;
    }
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line, const std::string& message = {}) {
    throw ContractViolation(kind, expr, file, line, message);
}
}  // namespace detail

}  // namespace xbarsec

/// Precondition check: throws ContractViolation when `cond` is false.
#define XS_EXPECTS(cond)                                                               \
    do {                                                                               \
        if (!(cond)) ::xbarsec::detail::contract_fail("Precondition", #cond, __FILE__, \
                                                      __LINE__);                       \
    } while (false)

/// Precondition check with an explanatory message.
#define XS_EXPECTS_MSG(cond, msg)                                                      \
    do {                                                                               \
        if (!(cond)) ::xbarsec::detail::contract_fail("Precondition", #cond, __FILE__, \
                                                      __LINE__, (msg));                \
    } while (false)

/// Postcondition check: throws ContractViolation when `cond` is false.
#define XS_ENSURES(cond)                                                                \
    do {                                                                                \
        if (!(cond)) ::xbarsec::detail::contract_fail("Postcondition", #cond, __FILE__, \
                                                      __LINE__);                        \
    } while (false)

/// Internal invariant; disabled when XBARSEC_NO_ASSERT is defined.
#ifdef XBARSEC_NO_ASSERT
#define XS_ASSERT(cond) ((void)0)
#else
#define XS_ASSERT(cond)                                                             \
    do {                                                                            \
        if (!(cond)) ::xbarsec::detail::contract_fail("Invariant", #cond, __FILE__, \
                                                      __LINE__);                    \
    } while (false)
#endif
