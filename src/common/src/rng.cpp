#include "xbarsec/common/rng.hpp"

#include <numeric>

namespace xbarsec {

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n, std::size_t k) {
    XS_EXPECTS(k <= n);
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    // Partial Fisher-Yates: after i swaps the first i entries are a uniform
    // sample without replacement.
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = i + static_cast<std::size_t>(rng.below(n - i));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

std::vector<std::size_t> random_permutation(Rng& rng, std::size_t n) {
    return sample_without_replacement(rng, n, n);
}

}  // namespace xbarsec
