#include "xbarsec/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"

namespace xbarsec {

std::size_t Table::begin_row() {
    cells_.emplace_back();
    return cells_.size() - 1;
}

void Table::add(std::string cell) {
    XS_EXPECTS_MSG(!cells_.empty(), "call begin_row() before add()");
    cells_.back().push_back(std::move(cell));
}

void Table::add(double value, int precision) { add(format_number(value, precision)); }

void Table::add(long long value) { add(std::to_string(value)); }

void Table::add_row(std::vector<std::string> cells) { cells_.push_back(std::move(cells)); }

const std::vector<std::string>& Table::row(std::size_t i) const {
    XS_EXPECTS(i < cells_.size());
    return cells_[i];
}

std::string Table::format_number(double value, int precision) {
    if (std::isnan(value)) return "nan";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
    return buf;
}

std::string Table::to_markdown() const {
    // Column widths over header + all cells (ragged rows render padded).
    std::size_t ncols = header_.size();
    for (const auto& r : cells_) ncols = std::max(ncols, r.size());
    std::vector<std::size_t> width(ncols, 1);
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = std::max(width[c], header_[c].size());
    for (const auto& r : cells_)
        for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

    auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& r) {
        os << '|';
        for (std::size_t c = 0; c < ncols; ++c) {
            const std::string& cell = c < r.size() ? r[c] : std::string{};
            os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, header_);
    os << '|';
    for (std::size_t c = 0; c < ncols; ++c) os << std::string(width[c] + 2, '-') << '|';
    os << '\n';
    for (const auto& r : cells_) emit_row(os, r);
    return os.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
    const bool needs_quotes = cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"') out += "\"\"";
        else out += ch;
    }
    out += '"';
    return out;
}

void emit_csv_row(std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
        if (c) os << ',';
        os << csv_escape(row[c]);
    }
    os << '\n';
}
}  // namespace

std::string Table::to_csv() const {
    std::ostringstream os;
    if (!header_.empty()) emit_csv_row(os, header_);
    for (const auto& r : cells_) emit_csv_row(os, r);
    return os.str();
}

void Table::write_csv(const std::string& path) const {
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(p);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    out << to_csv();
    if (!out) throw IoError("short write to '" + path + "'");
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
    return os << table.to_markdown();
}

}  // namespace xbarsec
