#include "xbarsec/common/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"

namespace xbarsec {

void Cli::flag(const std::string& name, const std::string& default_value,
               const std::string& help) {
    XS_EXPECTS_MSG(!name.empty() && name.substr(0, 2) != "--",
                   "register flags without the leading dashes");
    const bool inserted = flags_.emplace(name, Flag{default_value, help, std::nullopt}).second;
    XS_EXPECTS_MSG(inserted, "duplicate flag registration");
    order_.push_back(name);
}

bool Cli::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(help().c_str(), stdout);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            throw ConfigError("unexpected positional argument '" + arg + "'");
        }
        arg = arg.substr(2);
        std::string name, value;
        bool has_value = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            has_value = true;
        } else {
            name = arg;
        }
        auto it = flags_.find(name);
        if (it == flags_.end()) throw ConfigError("unknown flag '--" + name + "' (see --help)");
        if (!has_value) {
            // `--name value` when the next token is not itself a flag;
            // otherwise treat as boolean true.
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        it->second.value = value;
    }
    return true;
}

const Cli::Flag& Cli::find(const std::string& name) const {
    const auto it = flags_.find(name);
    if (it == flags_.end()) throw ConfigError("flag '--" + name + "' was never registered");
    return it->second;
}

std::string Cli::str(const std::string& name) const {
    const Flag& f = find(name);
    return f.value.value_or(f.default_value);
}

long long Cli::integer(const std::string& name) const {
    const std::string v = str(name);
    try {
        std::size_t pos = 0;
        const long long out = std::stoll(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return out;
    } catch (const std::exception&) {
        throw ConfigError("flag '--" + name + "': '" + v + "' is not an integer");
    }
}

double Cli::real(const std::string& name) const {
    const std::string v = str(name);
    try {
        std::size_t pos = 0;
        const double out = std::stod(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return out;
    } catch (const std::exception&) {
        throw ConfigError("flag '--" + name + "': '" + v + "' is not a number");
    }
}

bool Cli::boolean(const std::string& name) const {
    const std::string v = str(name);
    if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
    if (v == "false" || v == "0" || v == "no" || v == "off") return false;
    throw ConfigError("flag '--" + name + "': '" + v + "' is not a boolean");
}

namespace {
std::vector<std::string> split_csv(const std::string& text) {
    std::vector<std::string> parts;
    std::string cur;
    std::istringstream is(text);
    while (std::getline(is, cur, ',')) parts.push_back(cur);
    return parts;
}
}  // namespace

std::vector<double> Cli::real_list(const std::string& name) const {
    std::vector<double> out;
    for (const auto& part : split_csv(str(name))) {
        try {
            out.push_back(std::stod(part));
        } catch (const std::exception&) {
            throw ConfigError("flag '--" + name + "': '" + part + "' is not a number");
        }
    }
    return out;
}

std::vector<long long> Cli::integer_list(const std::string& name) const {
    std::vector<long long> out;
    for (const auto& part : split_csv(str(name))) {
        try {
            out.push_back(std::stoll(part));
        } catch (const std::exception&) {
            throw ConfigError("flag '--" + name + "': '" + part + "' is not an integer");
        }
    }
    return out;
}

bool Cli::provided(const std::string& name) const { return find(name).value.has_value(); }

std::string Cli::help() const {
    std::ostringstream os;
    os << summary_ << "\n\nFlags:\n";
    for (const auto& name : order_) {
        const Flag& f = flags_.at(name);
        os << "  --" << name;
        if (!f.default_value.empty()) os << " (default: " << f.default_value << ")";
        os << "\n      " << f.help << "\n";
    }
    os << "  --help\n      Show this message.\n";
    return os.str();
}

}  // namespace xbarsec
