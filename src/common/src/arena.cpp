#include "xbarsec/common/arena.hpp"

#include <algorithm>

namespace xbarsec {

void* Arena::allocate(std::size_t bytes) {
    // Zero-byte requests still return a unique, aligned, dereferenceable
    // pointer so callers never need a special case.
    const std::size_t rounded = std::max<std::size_t>((bytes + kAlign - 1) & ~(kAlign - 1), kAlign);

    // Advance through (possibly pre-existing, rewound) chunks until one fits.
    while (active_ < chunks_.size()) {
        Chunk& c = chunks_[active_];
        if (c.size - c.used >= rounded) {
            void* p = c.base + c.used;
            c.used += rounded;
            return p;
        }
        ++active_;
    }

    // Nothing fits: append a chunk, at least doubling the reservation cadence.
    Chunk c;
    c.size = std::max(rounded, next_chunk_bytes_);
    next_chunk_bytes_ = c.size * 2;
    c.storage = std::make_unique<std::byte[]>(c.size + kAlign);
    const auto raw = reinterpret_cast<std::uintptr_t>(c.storage.get());
    c.base = c.storage.get() + (kAlign - raw % kAlign) % kAlign;
    c.used = rounded;
    active_ = chunks_.size();
    chunks_.push_back(std::move(c));
    return chunks_.back().base;
}

void Arena::reset() {
    for (Chunk& c : chunks_) c.used = 0;
    active_ = 0;
}

std::size_t Arena::bytes_in_use() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.used;
    return total;
}

std::size_t Arena::bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
}

void Arena::rewind(std::size_t chunk, std::size_t used) {
    // Chunks past the mark were filled (or appended) after the Scope
    // opened; empty them without releasing their storage.
    for (std::size_t i = chunk; i < chunks_.size(); ++i) chunks_[i].used = 0;
    if (chunk < chunks_.size()) chunks_[chunk].used = used;
    active_ = chunk;
}

Arena& thread_arena() {
    static thread_local Arena arena;
    return arena;
}

}  // namespace xbarsec
