#include "xbarsec/common/log.hpp"

#include <atomic>
#include <cstdio>

namespace xbarsec::log {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

void set_level(LogLevel level) { g_level.store(static_cast<int>(level), std::memory_order_relaxed); }

LogLevel level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void write(LogLevel lvl, const std::string& message) {
    if (static_cast<int>(lvl) < g_level.load(std::memory_order_relaxed)) return;
    std::string line;
    line.reserve(message.size() + 20);
    line += "[xbarsec:";
    line += level_name(lvl);
    line += "] ";
    line += message;
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace xbarsec::log
