#include "xbarsec/common/threadpool.hpp"

#include <atomic>
#include <exception>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    XS_EXPECTS(task != nullptr);
    {
        std::lock_guard lock(mutex_);
        XS_EXPECTS_MSG(!stopping_, "submit() after destruction began");
        queue_.push(std::move(task));
        ++in_flight_;
    }
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();  // tasks are noexcept-wrapped by parallel_for; see below
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) cv_idle_.notify_all();
        }
    }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    if (count == 1) {
        body(0);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto drain = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed)) return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    // One drain task per worker; the calling thread participates too, so a
    // pool of size 1 still gives two lanes of progress.
    const std::size_t tasks = std::min(pool.thread_count(), count);
    for (std::size_t t = 0; t < tasks; ++t) pool.submit(drain);
    drain();
    pool.wait_idle();

    if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
    static ThreadPool pool;  // sized to hardware once; benches share it
    parallel_for(pool, count, body);
}

}  // namespace xbarsec
