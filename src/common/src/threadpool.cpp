#include "xbarsec/common/threadpool.hpp"

#include <atomic>
#include <exception>
#include <memory>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mutex_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    XS_EXPECTS(task != nullptr);
    {
        std::lock_guard lock(mutex_);
        XS_EXPECTS_MSG(!stopping_, "submit() after destruction began");
        queue_.push(std::move(task));
        ++in_flight_;
    }
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();  // tasks are noexcept-wrapped by parallel_for; see below
        {
            std::lock_guard lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) cv_idle_.notify_all();
        }
    }
}

namespace {

/// Shared state of one parallel_for call. Held by shared_ptr so helper
/// tasks that only start after the call has returned (their queue slot was
/// behind other work) find valid — already exhausted — state instead of
/// dangling stack references.
struct ParallelForState {
    explicit ParallelForState(std::size_t n, const std::function<void(std::size_t)>& b)
        : count(n), body(&b) {}

    const std::size_t count;
    const std::function<void(std::size_t)>* body;  ///< only read while indices remain
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex mutex;
    std::condition_variable cv_done;

    /// Claims indices until they run out. Every index in [0, count) is
    /// claimed by somebody (the calling thread keeps looping until the
    /// range is exhausted), and every claimed index bumps `done` exactly
    /// once — executed or skipped-after-failure — so done == count is the
    /// call's completion condition, independent of any other work on the
    /// pool. That is what makes nested parallel_for deadlock-free: a
    /// worker blocked here waits only for iterations its own calling
    /// thread can finish, never for the pool to go globally idle.
    void drain() {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            if (!failed.load(std::memory_order_relaxed)) {
                try {
                    (*body)(i);
                } catch (...) {
                    std::lock_guard lock(mutex);
                    if (!first_error) first_error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            }
            if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
                std::lock_guard lock(mutex);
                cv_done.notify_all();
            }
        }
    }
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
    if (count == 0) return;
    if (count == 1) {
        body(0);
        return;
    }

    auto state = std::make_shared<ParallelForState>(count, body);

    // One drain task per worker; the calling thread participates too, so a
    // pool of size 1 still gives two lanes of progress.
    const std::size_t tasks = std::min(pool.thread_count(), count);
    for (std::size_t t = 0; t < tasks; ++t) pool.submit([state] { state->drain(); });
    state->drain();

    std::unique_lock lock(state->mutex);
    state->cv_done.wait(lock,
                        [&] { return state->done.load(std::memory_order_acquire) == count; });
    if (state->first_error) std::rethrow_exception(state->first_error);
}

void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body) {
    static ThreadPool pool;  // sized to hardware once; benches share it
    parallel_for(pool, count, body);
}

}  // namespace xbarsec
