// Labeled image dataset container.
//
// Inputs are stored flattened (one row per sample, pixel values in [0, 1])
// because the paper's networks are single dense layers; image geometry is
// retained as metadata so sensitivity/1-norm maps (Figure 3) can be
// rendered back into H×W grids.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/matrix.hpp"
#include "xbarsec/tensor/vector.hpp"

namespace xbarsec::data {

/// Image geometry metadata for a flattened dataset.
struct ImageShape {
    std::size_t height = 0;
    std::size_t width = 0;
    std::size_t channels = 1;

    std::size_t pixels() const { return height * width * channels; }

    friend bool operator==(const ImageShape&, const ImageShape&) = default;
};

/// A supervised classification dataset: flattened inputs, integer labels,
/// and a one-hot target matrix derived from them.
class Dataset {
public:
    Dataset() = default;

    /// Builds from inputs (samples × features), per-sample labels in
    /// [0, num_classes), and image geometry with pixels() == features.
    Dataset(tensor::Matrix inputs, std::vector<int> labels, std::size_t num_classes,
            ImageShape shape, std::string name = {});

    std::size_t size() const { return labels_.size(); }
    std::size_t input_dim() const { return inputs_.cols(); }
    std::size_t num_classes() const { return num_classes_; }
    const ImageShape& shape() const { return shape_; }
    const std::string& name() const { return name_; }
    bool empty() const { return labels_.empty(); }

    const tensor::Matrix& inputs() const { return inputs_; }

    /// One-hot targets (samples × num_classes), built lazily on first use
    /// and cached.
    const tensor::Matrix& targets() const;

    int label(std::size_t i) const;
    const std::vector<int>& labels() const { return labels_; }

    /// Copy of sample i's input row.
    tensor::Vector input(std::size_t i) const;

    /// One-hot target for sample i.
    tensor::Vector target(std::size_t i) const;

    /// New dataset containing rows at `indices` (in that order).
    Dataset subset(const std::vector<std::size_t>& indices) const;

    /// First n samples (n clamped to size()).
    Dataset take(std::size_t n) const;

    /// In-place random permutation of samples.
    void shuffle(Rng& rng);

    /// Per-class sample counts.
    std::vector<std::size_t> class_counts() const;

private:
    tensor::Matrix inputs_;
    std::vector<int> labels_;
    std::size_t num_classes_ = 0;
    ImageShape shape_;
    std::string name_;
    mutable tensor::Matrix targets_cache_;
};

/// Train/test pair produced by generators and loaders.
struct DataSplit {
    Dataset train;
    Dataset test;
};

/// Builds a one-hot matrix from labels.
tensor::Matrix one_hot(const std::vector<int>& labels, std::size_t num_classes);

}  // namespace xbarsec::data
