// Procedural CIFAR-10-like dataset.
//
// Genuine CIFAR-10 is not available offline; this stand-in reproduces the
// statistical properties the paper's CIFAR-10 conclusions rest on:
//   * 10 classes of 32×32 RGB images in [0,1], flattened channel-planar
//     (R plane, then G, then B — the CIFAR-10 binary layout), so "the
//     first color channel" of Figure 3(f,h) is columns [0, 1024);
//   * weak linear separability: a single-layer network plateaus around
//     30–40% accuracy like the paper's CIFAR oracles;
//   * class evidence carried by global colour statistics plus
//     random-phase textures, so learned weight maps (and hence column
//     1-norm maps) vary rapidly across pixel locations — the "roughness"
//     the paper contrasts with MNIST in Sections III–IV.
#pragma once

#include <cstdint>

#include "xbarsec/data/dataset.hpp"

namespace xbarsec::data {

/// Parameters of the CIFAR-like generator. Defaults calibrated so a
/// single-layer softmax lands in the paper's ~0.3–0.4 accuracy band.
struct SyntheticCifar10Config {
    std::size_t train_count = 8000;
    std::size_t test_count = 2000;
    std::uint64_t seed = 1234;

    std::size_t image_size = 32;

    /// Strength of the per-class mean-colour offset (the linearly usable
    /// signal). Larger ⇒ higher single-layer accuracy.
    double color_signal = 0.15;

    /// Amplitude of the class-dependent sinusoidal texture. Its phase is
    /// random per sample, so it is (nearly) useless to a linear model but
    /// dominates pixel variance.
    double texture_amp = 0.22;

    /// Std-dev of i.i.d. pixel noise.
    double noise_std = 0.18;

    /// Std-dev of per-sample global brightness jitter (shared across all
    /// pixels; mimics illumination variation).
    double brightness_std = 0.10;

    /// Std-dev of per-sample, per-channel colour jitter. This is the knob
    /// that pins single-layer accuracy to the paper's band: it makes the
    /// class colour evidence ambiguous at the image level, which no
    /// amount of training data removes for a linear model.
    double color_jitter_std = 0.10;

    /// Amplitude of the class-specific FIXED-phase low-frequency spatial
    /// layout template ("sky on top"-style scene statistics). Unlike the
    /// random-phase grating this IS linearly usable, giving the weight
    /// maps genuine spatial structure; per-sample amplitude and phase
    /// jitter keep it noisy.
    double layout_amp = 0.025;

    /// Per-sample phase jitter (radians) of the layout template; larger
    /// values blur the template toward linear uselessness.
    double layout_phase_jitter = 0.8;

    /// Number of random soft blobs composited per image (object clutter).
    int blob_count = 3;
};

/// Renders one image of class `cls` (flattened planar RGB, 3·size² values).
tensor::Vector render_cifar_like(int cls, Rng& rng, const SyntheticCifar10Config& config);

/// Generates a balanced train/test split.
DataSplit make_synthetic_cifar10(const SyntheticCifar10Config& config = {});

}  // namespace xbarsec::data
