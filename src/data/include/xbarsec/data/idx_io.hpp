// IDX file format reader/writer (the MNIST distribution format).
//
// Header: two zero bytes, a type code byte (0x08 = unsigned byte), a
// dimension-count byte, then big-endian uint32 extents, then raw data.
// Only the unsigned-byte payload type is supported — that is what MNIST
// ships — and images are rescaled to [0, 1] doubles on load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xbarsec/tensor/matrix.hpp"

namespace xbarsec::data::idx {

/// Decoded IDX image stack.
struct Images {
    tensor::Matrix pixels;  ///< count × (rows·cols), values in [0, 1]
    std::size_t rows = 0;
    std::size_t cols = 0;
};

/// Reads a rank-3 IDX image file (count × rows × cols). Throws IoError /
/// ParseError on malformed input.
Images read_images(const std::string& path);

/// Reads a rank-1 IDX label file. Throws IoError / ParseError.
std::vector<int> read_labels(const std::string& path);

/// Writes images (each row is one image, values in [0,1] quantised to
/// bytes) in IDX rank-3 format; used by tests and for exporting synthetic
/// datasets in a format that standard MNIST tooling can read.
void write_images(const std::string& path, const tensor::Matrix& pixels, std::size_t rows,
                  std::size_t cols);

/// Writes labels in IDX rank-1 format.
void write_labels(const std::string& path, const std::vector<int>& labels);

}  // namespace xbarsec::data::idx
