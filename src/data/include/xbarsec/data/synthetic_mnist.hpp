// Procedural MNIST-like digit dataset.
//
// Genuine MNIST is not available in this offline environment, so the
// paper's MNIST experiments run on a synthetic stand-in engineered to
// preserve the properties the paper's phenomena depend on:
//   * 10 classes of 28×28 grayscale images in [0, 1];
//   * high linear separability (a single softmax layer reaches ≈90%);
//   * spatially smooth, centre-concentrated class-discriminative pixels,
//     which is what makes the MNIST 1-norm maps of Figure 3 smooth and
//     the Section III search discussion applicable.
// Digits are rendered from per-class stroke skeletons (polylines/arcs)
// under random affine jitter, stroke-width variation, and pixel noise.
// When real MNIST IDX files are present, loaders.hpp prefers them.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "xbarsec/data/dataset.hpp"

namespace xbarsec::data {

/// 2-D point in the unit design square ([0,1]², y pointing down).
struct Point {
    double x = 0.0;
    double y = 0.0;
};

/// A stroke is an open polyline; a digit skeleton is a list of strokes.
using Stroke = std::vector<Point>;
using StrokeSet = std::vector<Stroke>;

/// Parameters of the generator. Defaults are calibrated so that a
/// single-layer softmax network reaches ~90% test accuracy (matching the
/// MNIST band in the paper's Figure 5).
struct SyntheticMnistConfig {
    std::size_t train_count = 8000;
    std::size_t test_count = 2000;
    std::uint64_t seed = 42;

    /// Image geometry (MNIST's 28×28 by default).
    std::size_t image_size = 28;

    /// Std-dev of additive pixel noise (clamped to [0,1] afterwards).
    double noise_std = 0.10;

    /// Max |translation| in pixels, applied independently per axis.
    double max_shift_px = 2.5;

    /// Max |rotation| in degrees.
    double max_rotate_deg = 16.0;

    /// Per-sample isotropic scale range.
    double min_scale = 0.80;
    double max_scale = 1.15;

    /// Max |shear| factor.
    double max_shear = 0.12;

    /// Stroke half-width range in unit coordinates (≈ ×20 px).
    double stroke_min = 0.040;
    double stroke_max = 0.085;
};

/// The canonical stroke skeleton for digit d in [0, 9], in the unit square.
/// Exposed for tests (all points must stay within [0,1]±stroke margin).
const StrokeSet& digit_strokes(int digit);

/// Renders one digit image with the given RNG (consumes a deterministic
/// number-of-draws-independent stream). Returns image_size² pixels in [0,1].
tensor::Vector render_digit(int digit, Rng& rng, const SyntheticMnistConfig& config);

/// Generates a balanced train/test split (labels cycle 0..9) with
/// independent renders; train and test share no RNG state beyond the seed.
DataSplit make_synthetic_mnist(const SyntheticMnistConfig& config = {});

}  // namespace xbarsec::data
