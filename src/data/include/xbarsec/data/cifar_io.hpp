// CIFAR-10 binary-batch reader/writer.
//
// Each batch file is a sequence of 3073-byte records: one label byte then
// 3072 pixel bytes in planar RGB order (1024 R, 1024 G, 1024 B). Pixels
// are rescaled to [0, 1] doubles on load.
#pragma once

#include <string>
#include <vector>

#include "xbarsec/data/dataset.hpp"

namespace xbarsec::data::cifar {

/// Record geometry of the CIFAR-10 binary format.
inline constexpr std::size_t kImageSize = 32;
inline constexpr std::size_t kPixelsPerImage = 3 * kImageSize * kImageSize;
inline constexpr std::size_t kRecordBytes = 1 + kPixelsPerImage;

/// Reads one batch file into a Dataset (num_classes = 10). Throws
/// IoError / ParseError on malformed input (size must be a multiple of
/// the record length).
Dataset read_batch(const std::string& path, const std::string& name = {});

/// Reads and concatenates several batch files.
Dataset read_batches(const std::vector<std::string>& paths, const std::string& name = {});

/// Writes a dataset (32×32×3 planar, values in [0,1]) as a CIFAR-10
/// binary batch; used for round-trip tests and synthetic exports.
void write_batch(const std::string& path, const Dataset& dataset);

}  // namespace xbarsec::data::cifar
