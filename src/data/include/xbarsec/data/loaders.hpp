// High-level dataset acquisition: real files when present, synthetic
// otherwise.
//
// The benches call these so that dropping genuine MNIST / CIFAR-10 files
// into --data-dir upgrades every experiment to the paper's real datasets
// with no code change; in the default offline environment the calibrated
// synthetic generators are used (the substitution is logged).
#pragma once

#include <cstdint>
#include <string>

#include "xbarsec/data/dataset.hpp"

namespace xbarsec::data {

/// Options shared by the dataset loaders.
struct LoadOptions {
    /// Directory searched for real dataset files ("" disables the search).
    /// MNIST: train-images-idx3-ubyte / train-labels-idx1-ubyte /
    ///        t10k-images-idx3-ubyte / t10k-labels-idx1-ubyte.
    /// CIFAR-10: data_batch_1..5.bin / test_batch.bin.
    std::string data_dir;

    /// Sample budget; real datasets are truncated to these counts (0 =
    /// keep everything), synthetic ones are generated at exactly these
    /// counts.
    std::size_t train_count = 8000;
    std::size_t test_count = 2000;

    /// Seed for synthetic generation and for subsampling real data.
    std::uint64_t seed = 42;
};

/// True when all four MNIST IDX files exist under `dir`.
bool mnist_files_present(const std::string& dir);

/// True when the six CIFAR-10 binary batches exist under `dir`.
bool cifar10_files_present(const std::string& dir);

/// Loads real MNIST if present, otherwise generates the synthetic
/// stand-in (see synthetic_mnist.hpp).
DataSplit load_mnist_like(const LoadOptions& options);

/// Loads real CIFAR-10 if present, otherwise generates the synthetic
/// stand-in (see synthetic_cifar10.hpp).
DataSplit load_cifar10_like(const LoadOptions& options);

}  // namespace xbarsec::data
