#include "xbarsec/data/idx_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"

namespace xbarsec::data::idx {

namespace {

constexpr std::uint8_t kTypeUnsignedByte = 0x08;

std::uint32_t read_be32(std::istream& in, const std::string& path) {
    unsigned char b[4];
    in.read(reinterpret_cast<char*>(b), 4);
    if (!in) throw ParseError("unexpected EOF in IDX header of '" + path + "'");
    return (std::uint32_t(b[0]) << 24) | (std::uint32_t(b[1]) << 16) | (std::uint32_t(b[2]) << 8) |
           std::uint32_t(b[3]);
}

void write_be32(std::ostream& out, std::uint32_t v) {
    const unsigned char b[4] = {static_cast<unsigned char>(v >> 24),
                                static_cast<unsigned char>(v >> 16),
                                static_cast<unsigned char>(v >> 8),
                                static_cast<unsigned char>(v)};
    out.write(reinterpret_cast<const char*>(b), 4);
}

/// Reads and validates the 4-byte magic; returns the dimension count.
std::size_t read_magic(std::istream& in, const std::string& path, std::size_t expected_rank) {
    unsigned char magic[4];
    in.read(reinterpret_cast<char*>(magic), 4);
    if (!in) throw ParseError("file too short for IDX magic: '" + path + "'");
    if (magic[0] != 0 || magic[1] != 0) throw ParseError("bad IDX magic in '" + path + "'");
    if (magic[2] != kTypeUnsignedByte) {
        throw ParseError("unsupported IDX element type in '" + path +
                         "' (only unsigned byte is supported)");
    }
    const std::size_t rank = magic[3];
    if (rank != expected_rank) {
        throw ParseError("IDX rank mismatch in '" + path + "': expected " +
                         std::to_string(expected_rank) + ", found " + std::to_string(rank));
    }
    return rank;
}

}  // namespace

Images read_images(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open '" + path + "'");
    read_magic(in, path, 3);
    const std::uint32_t count = read_be32(in, path);
    const std::uint32_t rows = read_be32(in, path);
    const std::uint32_t cols = read_be32(in, path);
    if (rows == 0 || cols == 0) throw ParseError("zero image extent in '" + path + "'");

    const std::size_t per_image = std::size_t{rows} * cols;
    std::vector<unsigned char> buf(per_image);
    Images out;
    out.rows = rows;
    out.cols = cols;
    out.pixels = tensor::Matrix(count, per_image);
    for (std::uint32_t i = 0; i < count; ++i) {
        in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(per_image));
        if (!in) throw ParseError("truncated image data in '" + path + "'");
        auto row = out.pixels.row_span(i);
        for (std::size_t p = 0; p < per_image; ++p) row[p] = static_cast<double>(buf[p]) / 255.0;
    }
    return out;
}

std::vector<int> read_labels(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open '" + path + "'");
    read_magic(in, path, 1);
    const std::uint32_t count = read_be32(in, path);
    std::vector<unsigned char> buf(count);
    in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(count));
    if (!in) throw ParseError("truncated label data in '" + path + "'");
    std::vector<int> labels(count);
    std::transform(buf.begin(), buf.end(), labels.begin(),
                   [](unsigned char b) { return static_cast<int>(b); });
    return labels;
}

void write_images(const std::string& path, const tensor::Matrix& pixels, std::size_t rows,
                  std::size_t cols) {
    XS_EXPECTS(rows * cols == pixels.cols());
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    const unsigned char magic[4] = {0, 0, kTypeUnsignedByte, 3};
    out.write(reinterpret_cast<const char*>(magic), 4);
    write_be32(out, static_cast<std::uint32_t>(pixels.rows()));
    write_be32(out, static_cast<std::uint32_t>(rows));
    write_be32(out, static_cast<std::uint32_t>(cols));
    std::vector<unsigned char> buf(pixels.cols());
    for (std::size_t i = 0; i < pixels.rows(); ++i) {
        const auto row = pixels.row_span(i);
        for (std::size_t p = 0; p < row.size(); ++p) {
            const double v = std::clamp(row[p], 0.0, 1.0);
            buf[p] = static_cast<unsigned char>(std::lround(v * 255.0));
        }
        out.write(reinterpret_cast<const char*>(buf.data()),
                  static_cast<std::streamsize>(buf.size()));
    }
    if (!out) throw IoError("short write to '" + path + "'");
}

void write_labels(const std::string& path, const std::vector<int>& labels) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    const unsigned char magic[4] = {0, 0, kTypeUnsignedByte, 1};
    out.write(reinterpret_cast<const char*>(magic), 4);
    write_be32(out, static_cast<std::uint32_t>(labels.size()));
    for (int label : labels) {
        XS_EXPECTS(label >= 0 && label <= 255);
        const auto b = static_cast<unsigned char>(label);
        out.write(reinterpret_cast<const char*>(&b), 1);
    }
    if (!out) throw IoError("short write to '" + path + "'");
}

}  // namespace xbarsec::data::idx
