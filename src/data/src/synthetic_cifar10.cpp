#include "xbarsec/data/synthetic_cifar10.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Per-class base colours (R, G, B offsets from mid-grey, unit length-ish).
/// Spread over colour space but deliberately overlapping: class identity is
/// a *statistical* pull, not a separable colour key.
constexpr std::array<std::array<double, 3>, 10> kPalette = {{
    {+0.9, -0.3, -0.3},  // 0: reddish
    {-0.4, +0.8, -0.2},  // 1: green
    {-0.3, -0.3, +0.9},  // 2: blue
    {+0.7, +0.6, -0.4},  // 3: yellow
    {+0.6, -0.4, +0.6},  // 4: magenta
    {-0.5, +0.6, +0.6},  // 5: cyan
    {+0.8, +0.2, +0.1},  // 6: orange
    {-0.7, -0.2, +0.4},  // 7: slate
    {+0.2, -0.7, +0.3},  // 8: violet-green mix
    {-0.2, +0.3, -0.8},  // 9: olive
}};

/// Class texture parameters: orientation (radians) and spatial frequency
/// (cycles per image). Orientation/frequency carry class info only through
/// second-order statistics — invisible to a linear readout with random phase.
struct Texture {
    double orientation;
    double frequency;
};

Texture class_texture(int cls) {
    return {static_cast<double>(cls) * (kPi / 10.0), 2.0 + static_cast<double>(cls % 5)};
}

/// Class layout template: a fixed-phase low-frequency wave whose direction
/// and phase are class-determined. Distinct per class, ~1 cycle per image.
struct Layout {
    double ax, ay, phase;
};

Layout class_layout(int cls) {
    const double angle = static_cast<double>(cls) * (2.0 * kPi / 10.0) + 0.4;
    const double cycles = 1.0 + static_cast<double>(cls % 3) * 0.5;
    return {cycles * std::cos(angle), cycles * std::sin(angle),
            static_cast<double>(cls) * 0.7};
}

}  // namespace

tensor::Vector render_cifar_like(int cls, Rng& rng, const SyntheticCifar10Config& config) {
    XS_EXPECTS(cls >= 0 && cls <= 9);
    XS_EXPECTS(config.image_size >= 8);
    const std::size_t n = config.image_size;
    const std::size_t plane = n * n;
    tensor::Vector img(3 * plane, 0.0);

    const auto& base = kPalette[static_cast<std::size_t>(cls)];
    const Texture tex = class_texture(cls);
    const Layout layout = class_layout(cls);
    const double layout_gain = config.layout_amp * rng.uniform(0.3, 1.0);
    const double layout_phase =
        layout.phase + rng.normal(0.0, config.layout_phase_jitter);
    const double phase = rng.uniform(0.0, 2.0 * kPi);
    const double brightness = rng.normal(0.0, config.brightness_std);
    const std::array<double, 3> channel_jitter{rng.normal(0.0, config.color_jitter_std),
                                               rng.normal(0.0, config.color_jitter_std),
                                               rng.normal(0.0, config.color_jitter_std)};
    // Texture projects differently onto the three channels per sample.
    const double wr = rng.uniform(0.4, 1.0), wg = rng.uniform(0.4, 1.0), wb = rng.uniform(0.4, 1.0);

    // Random soft blobs (shared across channels with a random colour tint):
    // generic "object clutter" giving images low-frequency structure that is
    // uncorrelated with class.
    struct Blob {
        double cx, cy, r2, amp;
        std::array<double, 3> tint;
    };
    std::vector<Blob> blobs;
    blobs.reserve(static_cast<std::size_t>(std::max(0, config.blob_count)));
    for (int b = 0; b < config.blob_count; ++b) {
        Blob blob{};
        blob.cx = rng.uniform(0.0, static_cast<double>(n));
        blob.cy = rng.uniform(0.0, static_cast<double>(n));
        const double r = rng.uniform(0.12, 0.35) * static_cast<double>(n);
        blob.r2 = r * r;
        blob.amp = rng.uniform(-0.35, 0.35);
        blob.tint = {rng.uniform(0.3, 1.0), rng.uniform(0.3, 1.0), rng.uniform(0.3, 1.0)};
        blobs.push_back(blob);
    }

    const double co = std::cos(tex.orientation), so = std::sin(tex.orientation);
    const double freq_scale = 2.0 * kPi * tex.frequency / static_cast<double>(n);

    for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
            const double fx = static_cast<double>(x), fy = static_cast<double>(y);
            const double grating = std::sin(freq_scale * (fx * co + fy * so) + phase);
            const double layout_wave =
                layout_gain * std::cos(2.0 * kPi * (layout.ax * fx + layout.ay * fy) /
                                           static_cast<double>(n) +
                                       layout_phase);
            double blob_sum = 0.0;
            std::array<double, 3> blob_tinted{0.0, 0.0, 0.0};
            for (const Blob& blob : blobs) {
                const double dx = fx - blob.cx, dy = fy - blob.cy;
                const double g = blob.amp * std::exp(-(dx * dx + dy * dy) / blob.r2);
                blob_sum += g;
                for (int k = 0; k < 3; ++k) blob_tinted[static_cast<std::size_t>(k)] += g * blob.tint[static_cast<std::size_t>(k)];
            }
            (void)blob_sum;
            const std::size_t idx = y * n + x;
            const std::array<double, 3> tex_w{wr, wg, wb};
            for (std::size_t k = 0; k < 3; ++k) {
                double v = 0.5 + config.color_signal * base[k] + channel_jitter[k] +
                           config.texture_amp * tex_w[k] * grating + layout_wave +
                           blob_tinted[k] + brightness + rng.normal(0.0, config.noise_std);
                img[k * plane + idx] = std::clamp(v, 0.0, 1.0);
            }
        }
    }
    return img;
}

namespace {

Dataset generate(std::size_t count, Rng& rng, const SyntheticCifar10Config& config,
                 const std::string& name) {
    const std::size_t dim = 3 * config.image_size * config.image_size;
    tensor::Matrix inputs(count, dim);
    std::vector<int> labels(count);
    std::vector<int> order(count);
    for (std::size_t i = 0; i < count; ++i) order[i] = static_cast<int>(i % 10);
    rng.shuffle(order);
    for (std::size_t i = 0; i < count; ++i) {
        labels[i] = order[i];
        const tensor::Vector img = render_cifar_like(order[i], rng, config);
        auto dst = inputs.row_span(i);
        std::copy(img.begin(), img.end(), dst.begin());
    }
    const ImageShape shape{config.image_size, config.image_size, 3};
    return Dataset(std::move(inputs), std::move(labels), 10, shape, name);
}

}  // namespace

DataSplit make_synthetic_cifar10(const SyntheticCifar10Config& config) {
    XS_EXPECTS(config.train_count > 0 && config.test_count > 0);
    Rng train_rng(config.seed);
    Rng test_rng(config.seed ^ 0x5A5A5A5AFEEDFACEull);
    DataSplit split;
    split.train = generate(config.train_count, train_rng, config, "synthetic-cifar10-train");
    split.test = generate(config.test_count, test_rng, config, "synthetic-cifar10-test");
    return split;
}

}  // namespace xbarsec::data
