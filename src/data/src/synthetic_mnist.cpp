#include "xbarsec/data/synthetic_mnist.hpp"

#include <algorithm>
#include <cmath>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Samples an elliptical arc into a polyline. Angles in degrees with the
/// screen convention: 0° → +x (right), 90° → +y (down), 270° → up. The
/// sweep may be decreasing for counter-clockwise strokes.
Stroke arc(double cx, double cy, double rx, double ry, double deg0, double deg1, int segments = 14) {
    Stroke s;
    s.reserve(static_cast<std::size_t>(segments) + 1);
    for (int i = 0; i <= segments; ++i) {
        const double a = (deg0 + (deg1 - deg0) * i / segments) * kPi / 180.0;
        s.push_back({cx + rx * std::cos(a), cy + ry * std::sin(a)});
    }
    return s;
}

Stroke line(Point a, Point b) { return {a, b}; }

/// Builds the ten digit skeletons once. Coordinates live in [0,1]² with a
/// hand-tuned "handwritten print" look; the exact shapes matter less than
/// their mutual distinguishability and centre-of-canvas concentration.
std::array<StrokeSet, 10> build_skeletons() {
    std::array<StrokeSet, 10> d;

    // 0: single ellipse outline.
    d[0] = {arc(0.50, 0.50, 0.26, 0.37, 0, 360, 22)};

    // 1: vertical stem with a small entry flag and a base serif.
    d[1] = {line({0.52, 0.12}, {0.52, 0.88}),
            line({0.52, 0.12}, {0.36, 0.30}),
            line({0.38, 0.88}, {0.66, 0.88})};

    // 2: top bowl, descending diagonal, flat base.
    d[2] = {arc(0.50, 0.30, 0.25, 0.18, 180, 365, 14),
            line({0.755, 0.32}, {0.26, 0.85}),
            line({0.26, 0.85}, {0.78, 0.85})};

    // 3: two right-facing bowls.
    d[3] = {arc(0.46, 0.30, 0.25, 0.18, 160, 380, 14),
            arc(0.46, 0.67, 0.27, 0.20, -20, 200, 14)};

    // 4: diagonal into crossbar, separate vertical stem.
    d[4] = {line({0.58, 0.10}, {0.20, 0.56}),
            line({0.20, 0.56}, {0.80, 0.56}),
            line({0.66, 0.30}, {0.66, 0.90})};

    // 5: cap bar, short left wall, bottom bowl.
    d[5] = {line({0.72, 0.12}, {0.30, 0.12}),
            line({0.30, 0.12}, {0.28, 0.46}),
            arc(0.46, 0.64, 0.27, 0.21, -95, 165, 14)};

    // 6: sweeping C entry plus closed lower loop.
    d[6] = {arc(0.52, 0.50, 0.28, 0.37, 290, 90, 16),
            arc(0.52, 0.66, 0.22, 0.20, 0, 360, 18)};

    // 7: top bar and a long diagonal with a mid dash.
    d[7] = {line({0.24, 0.14}, {0.78, 0.14}),
            line({0.78, 0.14}, {0.42, 0.88}),
            line({0.40, 0.50}, {0.64, 0.50})};

    // 8: stacked loops, lower slightly larger.
    d[8] = {arc(0.50, 0.31, 0.20, 0.17, 0, 360, 18),
            arc(0.50, 0.68, 0.24, 0.20, 0, 360, 18)};

    // 9: upper loop with a long tail.
    d[9] = {arc(0.50, 0.32, 0.22, 0.19, 0, 360, 18),
            line({0.715, 0.34}, {0.60, 0.88})};

    return d;
}

const std::array<StrokeSet, 10>& skeletons() {
    static const std::array<StrokeSet, 10> s = build_skeletons();
    return s;
}

/// Squared distance from point p to segment (a, b).
double dist_sq_to_segment(Point p, Point a, Point b) {
    const double abx = b.x - a.x, aby = b.y - a.y;
    const double apx = p.x - a.x, apy = p.y - a.y;
    const double len_sq = abx * abx + aby * aby;
    double t = len_sq > 0.0 ? (apx * abx + apy * aby) / len_sq : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const double dx = apx - t * abx, dy = apy - t * aby;
    return dx * dx + dy * dy;
}

struct Affine {
    // pixel = M * (unit - 0.5) * design + center + shift
    double m00, m01, m10, m11;
    double cx, cy;

    Point apply(Point p) const {
        const double ux = p.x - 0.5, uy = p.y - 0.5;
        return {m00 * ux + m01 * uy + cx, m10 * ux + m11 * uy + cy};
    }
};

}  // namespace

const StrokeSet& digit_strokes(int digit) {
    XS_EXPECTS(digit >= 0 && digit <= 9);
    return skeletons()[static_cast<std::size_t>(digit)];
}

tensor::Vector render_digit(int digit, Rng& rng, const SyntheticMnistConfig& config) {
    XS_EXPECTS(digit >= 0 && digit <= 9);
    XS_EXPECTS(config.image_size >= 8);
    const auto n = config.image_size;
    const double design = 0.72 * static_cast<double>(n);  // digit body size in px

    // Per-sample jitter parameters.
    const double theta = rng.uniform(-config.max_rotate_deg, config.max_rotate_deg) * kPi / 180.0;
    const double scale = rng.uniform(config.min_scale, config.max_scale);
    const double shear = rng.uniform(-config.max_shear, config.max_shear);
    const double tx = rng.uniform(-config.max_shift_px, config.max_shift_px);
    const double ty = rng.uniform(-config.max_shift_px, config.max_shift_px);
    const double half_width_unit = rng.uniform(config.stroke_min, config.stroke_max);
    const double ink = rng.uniform(0.85, 1.0);

    // Compose rotate(theta) * shear(x by k) * scale, then map design box to
    // pixel coordinates centred in the canvas.
    const double c = std::cos(theta), s = std::sin(theta);
    Affine aff{};
    aff.m00 = (c + s * 0.0) * scale * design;
    aff.m01 = (c * shear - s) * scale * design;
    aff.m10 = (s + c * 0.0) * scale * design;
    aff.m11 = (s * shear + c) * scale * design;
    aff.cx = static_cast<double>(n) / 2.0 + tx;
    aff.cy = static_cast<double>(n) / 2.0 + ty;

    // Transform the skeleton into pixel space.
    const StrokeSet& strokes = digit_strokes(digit);
    std::vector<std::pair<Point, Point>> segments;
    for (const Stroke& stroke : strokes) {
        for (std::size_t i = 0; i + 1 < stroke.size(); ++i) {
            segments.emplace_back(aff.apply(stroke[i]), aff.apply(stroke[i + 1]));
        }
    }

    const double half_width_px = half_width_unit * design;
    const double falloff_px = 0.9;  // linear anti-aliased edge
    const double reach = half_width_px + falloff_px + 1.0;

    tensor::Vector img(n * n, 0.0);
    for (const auto& [a, b] : segments) {
        const auto x_lo = static_cast<std::size_t>(std::max(0.0, std::floor(std::min(a.x, b.x) - reach)));
        const auto x_hi = static_cast<std::size_t>(
            std::clamp(std::ceil(std::max(a.x, b.x) + reach), 0.0, static_cast<double>(n - 1)));
        const auto y_lo = static_cast<std::size_t>(std::max(0.0, std::floor(std::min(a.y, b.y) - reach)));
        const auto y_hi = static_cast<std::size_t>(
            std::clamp(std::ceil(std::max(a.y, b.y) + reach), 0.0, static_cast<double>(n - 1)));
        for (std::size_t y = y_lo; y <= y_hi; ++y) {
            for (std::size_t x = x_lo; x <= x_hi; ++x) {
                const Point p{static_cast<double>(x) + 0.5, static_cast<double>(y) + 0.5};
                const double dist = std::sqrt(dist_sq_to_segment(p, a, b));
                double value;
                if (dist <= half_width_px) {
                    value = ink;
                } else if (dist <= half_width_px + falloff_px) {
                    value = ink * (1.0 - (dist - half_width_px) / falloff_px);
                } else {
                    continue;
                }
                double& px = img[y * n + x];
                px = std::max(px, value);
            }
        }
    }

    // Additive pixel noise, clamped back into [0, 1].
    if (config.noise_std > 0.0) {
        for (auto& px : img) px = std::clamp(px + rng.normal(0.0, config.noise_std), 0.0, 1.0);
    }
    return img;
}

namespace {

Dataset generate(std::size_t count, Rng& rng, const SyntheticMnistConfig& config,
                 const std::string& name) {
    const std::size_t dim = config.image_size * config.image_size;
    tensor::Matrix inputs(count, dim);
    std::vector<int> labels(count);
    // Balanced labels in shuffled order so truncated prefixes stay balanced.
    std::vector<int> order(count);
    for (std::size_t i = 0; i < count; ++i) order[i] = static_cast<int>(i % 10);
    rng.shuffle(order);
    for (std::size_t i = 0; i < count; ++i) {
        labels[i] = order[i];
        const tensor::Vector img = render_digit(order[i], rng, config);
        auto dst = inputs.row_span(i);
        std::copy(img.begin(), img.end(), dst.begin());
    }
    const ImageShape shape{config.image_size, config.image_size, 1};
    return Dataset(std::move(inputs), std::move(labels), 10, shape, name);
}

}  // namespace

DataSplit make_synthetic_mnist(const SyntheticMnistConfig& config) {
    XS_EXPECTS(config.train_count > 0 && config.test_count > 0);
    Rng train_rng(config.seed);
    Rng test_rng(config.seed ^ 0xA5A5A5A5DEADBEEFull);
    DataSplit split;
    split.train = generate(config.train_count, train_rng, config, "synthetic-mnist-train");
    split.test = generate(config.test_count, test_rng, config, "synthetic-mnist-test");
    return split;
}

}  // namespace xbarsec::data
