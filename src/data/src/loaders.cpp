#include "xbarsec/data/loaders.hpp"

#include <filesystem>

#include "xbarsec/common/log.hpp"
#include "xbarsec/data/cifar_io.hpp"
#include "xbarsec/data/idx_io.hpp"
#include "xbarsec/data/synthetic_cifar10.hpp"
#include "xbarsec/data/synthetic_mnist.hpp"

namespace xbarsec::data {

namespace {

namespace fs = std::filesystem;

bool exists(const std::string& dir, const char* file) {
    return fs::exists(fs::path(dir) / file);
}

Dataset truncate_shuffled(Dataset d, std::size_t count, Rng& rng) {
    d.shuffle(rng);
    if (count > 0 && count < d.size()) d = d.take(count);
    return d;
}

}  // namespace

bool mnist_files_present(const std::string& dir) {
    if (dir.empty()) return false;
    return exists(dir, "train-images-idx3-ubyte") && exists(dir, "train-labels-idx1-ubyte") &&
           exists(dir, "t10k-images-idx3-ubyte") && exists(dir, "t10k-labels-idx1-ubyte");
}

bool cifar10_files_present(const std::string& dir) {
    if (dir.empty()) return false;
    for (const char* f : {"data_batch_1.bin", "data_batch_2.bin", "data_batch_3.bin",
                          "data_batch_4.bin", "data_batch_5.bin", "test_batch.bin"}) {
        if (!exists(dir, f)) return false;
    }
    return true;
}

DataSplit load_mnist_like(const LoadOptions& options) {
    if (mnist_files_present(options.data_dir)) {
        log::info("loading real MNIST from ", options.data_dir);
        const fs::path dir(options.data_dir);
        auto train_images = idx::read_images((dir / "train-images-idx3-ubyte").string());
        auto train_labels = idx::read_labels((dir / "train-labels-idx1-ubyte").string());
        auto test_images = idx::read_images((dir / "t10k-images-idx3-ubyte").string());
        auto test_labels = idx::read_labels((dir / "t10k-labels-idx1-ubyte").string());
        const ImageShape shape{train_images.rows, train_images.cols, 1};
        Rng rng(options.seed);
        DataSplit split;
        split.train = truncate_shuffled(
            Dataset(std::move(train_images.pixels), std::move(train_labels), 10, shape,
                    "mnist-train"),
            options.train_count, rng);
        split.test = truncate_shuffled(
            Dataset(std::move(test_images.pixels), std::move(test_labels), 10, shape, "mnist-test"),
            options.test_count, rng);
        return split;
    }
    log::info("real MNIST not found; generating calibrated synthetic stand-in (",
              options.train_count, " train / ", options.test_count, " test, seed ", options.seed,
              ")");
    SyntheticMnistConfig config;
    config.train_count = options.train_count;
    config.test_count = options.test_count;
    config.seed = options.seed;
    return make_synthetic_mnist(config);
}

DataSplit load_cifar10_like(const LoadOptions& options) {
    if (cifar10_files_present(options.data_dir)) {
        log::info("loading real CIFAR-10 from ", options.data_dir);
        const fs::path dir(options.data_dir);
        std::vector<std::string> train_paths;
        for (int b = 1; b <= 5; ++b) {
            train_paths.push_back((dir / ("data_batch_" + std::to_string(b) + ".bin")).string());
        }
        Rng rng(options.seed);
        DataSplit split;
        split.train = truncate_shuffled(cifar::read_batches(train_paths, "cifar10-train"),
                                        options.train_count, rng);
        split.test = truncate_shuffled(
            cifar::read_batch((dir / "test_batch.bin").string(), "cifar10-test"),
            options.test_count, rng);
        return split;
    }
    log::info("real CIFAR-10 not found; generating calibrated synthetic stand-in (",
              options.train_count, " train / ", options.test_count, " test, seed ", options.seed,
              ")");
    SyntheticCifar10Config config;
    config.train_count = options.train_count;
    config.test_count = options.test_count;
    config.seed = options.seed;
    return make_synthetic_cifar10(config);
}

}  // namespace xbarsec::data
