#include "xbarsec/data/cifar_io.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/error.hpp"

namespace xbarsec::data::cifar {

Dataset read_batch(const std::string& path, const std::string& name) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open '" + path + "'");
    in.seekg(0, std::ios::end);
    const auto bytes = static_cast<std::size_t>(in.tellg());
    in.seekg(0, std::ios::beg);
    if (bytes == 0 || bytes % kRecordBytes != 0) {
        throw ParseError("'" + path + "' is not a whole number of CIFAR-10 records (" +
                         std::to_string(bytes) + " bytes)");
    }
    const std::size_t count = bytes / kRecordBytes;

    tensor::Matrix inputs(count, kPixelsPerImage);
    std::vector<int> labels(count);
    std::vector<unsigned char> record(kRecordBytes);
    for (std::size_t i = 0; i < count; ++i) {
        in.read(reinterpret_cast<char*>(record.data()), static_cast<std::streamsize>(kRecordBytes));
        if (!in) throw ParseError("truncated record in '" + path + "'");
        if (record[0] > 9) throw ParseError("label byte out of range in '" + path + "'");
        labels[i] = record[0];
        auto row = inputs.row_span(i);
        for (std::size_t p = 0; p < kPixelsPerImage; ++p) {
            row[p] = static_cast<double>(record[p + 1]) / 255.0;
        }
    }
    const ImageShape shape{kImageSize, kImageSize, 3};
    return Dataset(std::move(inputs), std::move(labels), 10, shape,
                   name.empty() ? std::filesystem::path(path).filename().string() : name);
}

Dataset read_batches(const std::vector<std::string>& paths, const std::string& name) {
    XS_EXPECTS(!paths.empty());
    std::vector<Dataset> parts;
    parts.reserve(paths.size());
    std::size_t total = 0;
    for (const auto& p : paths) {
        parts.push_back(read_batch(p));
        total += parts.back().size();
    }
    tensor::Matrix inputs(total, kPixelsPerImage);
    std::vector<int> labels;
    labels.reserve(total);
    std::size_t row = 0;
    for (const auto& part : parts) {
        for (std::size_t i = 0; i < part.size(); ++i, ++row) {
            const auto src = part.inputs().row_span(i);
            auto dst = inputs.row_span(row);
            std::copy(src.begin(), src.end(), dst.begin());
            labels.push_back(part.label(i));
        }
    }
    const ImageShape shape{kImageSize, kImageSize, 3};
    return Dataset(std::move(inputs), std::move(labels), 10, shape, name);
}

void write_batch(const std::string& path, const Dataset& dataset) {
    XS_EXPECTS(dataset.input_dim() == kPixelsPerImage);
    XS_EXPECTS(dataset.num_classes() <= 10);
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open '" + path + "' for writing");
    std::vector<unsigned char> record(kRecordBytes);
    for (std::size_t i = 0; i < dataset.size(); ++i) {
        record[0] = static_cast<unsigned char>(dataset.label(i));
        const auto row = dataset.inputs().row_span(i);
        for (std::size_t p = 0; p < kPixelsPerImage; ++p) {
            const double v = std::clamp(row[p], 0.0, 1.0);
            record[p + 1] = static_cast<unsigned char>(std::lround(v * 255.0));
        }
        out.write(reinterpret_cast<const char*>(record.data()),
                  static_cast<std::streamsize>(record.size()));
    }
    if (!out) throw IoError("short write to '" + path + "'");
}

}  // namespace xbarsec::data::cifar
