#include "xbarsec/data/dataset.hpp"

#include <algorithm>

#include "xbarsec/common/contracts.hpp"

namespace xbarsec::data {

Dataset::Dataset(tensor::Matrix inputs, std::vector<int> labels, std::size_t num_classes,
                 ImageShape shape, std::string name)
    : inputs_(std::move(inputs)),
      labels_(std::move(labels)),
      num_classes_(num_classes),
      shape_(shape),
      name_(std::move(name)) {
    XS_EXPECTS(inputs_.rows() == labels_.size());
    XS_EXPECTS(num_classes_ > 0);
    XS_EXPECTS_MSG(shape_.pixels() == inputs_.cols(), "image shape does not match input width");
    for (int label : labels_) {
        XS_EXPECTS_MSG(label >= 0 && static_cast<std::size_t>(label) < num_classes_,
                       "label out of range");
    }
}

const tensor::Matrix& Dataset::targets() const {
    if (targets_cache_.rows() != labels_.size()) {
        targets_cache_ = one_hot(labels_, num_classes_);
    }
    return targets_cache_;
}

int Dataset::label(std::size_t i) const {
    XS_EXPECTS(i < labels_.size());
    return labels_[i];
}

tensor::Vector Dataset::input(std::size_t i) const {
    XS_EXPECTS(i < labels_.size());
    return inputs_.row(i);
}

tensor::Vector Dataset::target(std::size_t i) const {
    XS_EXPECTS(i < labels_.size());
    tensor::Vector t(num_classes_, 0.0);
    t[static_cast<std::size_t>(labels_[i])] = 1.0;
    return t;
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
    tensor::Matrix inputs(indices.size(), input_dim());
    std::vector<int> labels(indices.size());
    for (std::size_t r = 0; r < indices.size(); ++r) {
        XS_EXPECTS(indices[r] < size());
        const auto src = inputs_.row_span(indices[r]);
        auto dst = inputs.row_span(r);
        std::copy(src.begin(), src.end(), dst.begin());
        labels[r] = labels_[indices[r]];
    }
    return Dataset(std::move(inputs), std::move(labels), num_classes_, shape_, name_);
}

Dataset Dataset::take(std::size_t n) const {
    n = std::min(n, size());
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    return subset(idx);
}

void Dataset::shuffle(Rng& rng) {
    const auto perm = random_permutation(rng, size());
    *this = subset(perm);
}

std::vector<std::size_t> Dataset::class_counts() const {
    std::vector<std::size_t> counts(num_classes_, 0);
    for (int label : labels_) ++counts[static_cast<std::size_t>(label)];
    return counts;
}

tensor::Matrix one_hot(const std::vector<int>& labels, std::size_t num_classes) {
    XS_EXPECTS(num_classes > 0);
    tensor::Matrix t(labels.size(), num_classes, 0.0);
    for (std::size_t i = 0; i < labels.size(); ++i) {
        XS_EXPECTS(labels[i] >= 0 && static_cast<std::size_t>(labels[i]) < num_classes);
        t(i, static_cast<std::size_t>(labels[i])) = 1.0;
    }
    return t;
}

}  // namespace xbarsec::data
