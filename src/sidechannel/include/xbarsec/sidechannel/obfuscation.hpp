// Power-side-channel counter-measures (defensive extension).
//
// The paper's threat model immediately suggests cheap hardware defenses;
// all are implemented as wrappers around a TotalCurrentFn so their effect
// on probe quality is directly measurable (bench_nonideal):
//   * current dithering — a noise source on the supply rail adds
//     zero-mean randomness to every measurement, forcing the attacker to
//     average many repeats;
//   * uniform dummy load — identical always-on dummy devices on every
//     input line shift each column estimate by the same constant. This
//     biases magnitudes but provably preserves the 1-norm *ranking* the
//     Figure-4 attacks consume (property-tested) — i.e. it is NOT an
//     effective defense, a useful negative result;
//   * random dummy load — per-line dummy devices with randomised
//     conductances corrupt each column estimate by a different unknown
//     offset, degrading rank recovery in proportion to the dummy spread.
#pragma once

#include <cstdint>

#include "xbarsec/sidechannel/probe.hpp"

namespace xbarsec::sidechannel {

/// Wraps `measure` with additive Gaussian dither of absolute std-dev
/// `sigma_amps`. Each call draws fresh noise (deterministic stream).
TotalCurrentFn make_dithered_measure(TotalCurrentFn measure, double sigma_amps,
                                     std::uint64_t seed);

/// Wraps `measure` with an identical dummy conductance `g_dummy` on each
/// of the n input lines: adds g_dummy·Σ_j v_j. Rank-preserving.
TotalCurrentFn make_uniform_dummy_measure(TotalCurrentFn measure, double g_dummy);

/// Wraps `measure` with per-line dummy conductances: adds Σ_j g_line[j]·v_j.
TotalCurrentFn make_dummy_load_measure(TotalCurrentFn measure, tensor::Vector g_line);

/// Convenience: random per-line dummies drawn uniformly from
/// [0, g_dummy_max], seeded. Returns the wrapper; the drawn loads are an
/// implementation detail the defender would not publish.
TotalCurrentFn make_random_dummy_measure(TotalCurrentFn measure, std::size_t n,
                                         double g_dummy_max, std::uint64_t seed);

}  // namespace xbarsec::sidechannel
