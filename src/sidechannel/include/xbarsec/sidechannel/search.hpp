// Query-efficient search for the largest column 1-norm.
//
// Section III of the paper notes that a full probe costs one measurement
// per input and suggests that, when the 1-norm field is smooth over image
// locations (MNIST), standard search strategies could find the maximum
// with fewer queries — while CIFAR-10's rapidly varying field should
// defeat them. These strategies make that remark concrete and are
// compared by bench_search.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "xbarsec/data/dataset.hpp"

namespace xbarsec::sidechannel {

/// Pointwise field access: the value at index j (one probe measurement).
using FieldFn = std::function<double(std::size_t)>;

enum class SearchStrategy {
    FullScan,      ///< probe every index (baseline; always exact)
    RandomSubset,  ///< probe `budget` random indices, keep the best
    HillClimb,     ///< random restarts + greedy 2-D neighbourhood ascent
    CoarseToFine,  ///< coarse stride grid, then local refinement
};

std::string to_string(SearchStrategy s);

struct SearchOptions {
    /// Query budget (FullScan ignores it). Must be >= 1.
    std::size_t budget = 64;

    /// Restarts for HillClimb.
    std::size_t restarts = 4;

    /// Initial grid stride for CoarseToFine.
    std::size_t stride = 4;

    std::uint64_t seed = 99;
};

struct SearchResult {
    std::size_t best_index = 0;
    double best_value = 0.0;
    std::uint64_t queries = 0;  ///< distinct probes performed (cached repeats are free)
};

/// Runs the chosen strategy over an image-shaped field. `shape` supplies
/// the 2-D neighbourhood structure (for multi-channel images the search
/// runs over the full flattened index space; neighbours are within the
/// same channel plane).
SearchResult find_argmax(const FieldFn& field, const data::ImageShape& shape,
                         SearchStrategy strategy, const SearchOptions& options = {});

}  // namespace xbarsec::sidechannel
