// Current-signature adversarial-input detection (defensive baseline).
//
// The paper cites Moitra & Panda's DetectX (TCAS-I 2021), which flags
// adversarial inputs from the current signatures they induce in
// memristive crossbars. This module implements that idea for the
// single-layer setting with two signature granularities:
//   * InputLineCurrents (default, DetectX-style tile sensing): enrols the
//     class-conditional distribution of each input line's current draw
//     v_j·G_j and flags inputs whose worst per-line z-score is anomalous.
//     A strength-s single-pixel hit drives its line to ~s× the physical
//     clean maximum — unmissable.
//   * OutputCurrents: per-output-line currents. Coarser: the attacked
//     column's 1-norm is a SUM across output lines, so each line only
//     shifts by s·w_ij·scale ≈ 1σ.
//   * TotalCurrent: the scalar supply current only. Deliberately weak (a
//     documented negative result): a single-pixel hit moves i_total by
//     only ~1-2σ of the clean ink-amount spread.
// Small-ε FGSM noise moves both signatures little and mostly evades
// either mode (quantified by bench_detector).
#pragma once

#include <cstdint>
#include <vector>

#include "xbarsec/data/dataset.hpp"
#include "xbarsec/stats/descriptive.hpp"
#include "xbarsec/xbar/xbar_network.hpp"

namespace xbarsec::sidechannel {

enum class SignatureMode {
    InputLineCurrents,  ///< per-input-line supply currents (DetectX-style
                        ///< tile sensing; default). A power-guided pixel
                        ///< hit drives its line far beyond the physical
                        ///< clean maximum — unmissable.
    OutputCurrents,     ///< per-output-line currents (coarser: the high-L1
                        ///< column's weight is spread across lines)
    TotalCurrent,       ///< scalar supply current only (weak baseline)
};

/// Configuration for the detector's decision rule.
struct DetectorConfig {
    /// Manual decision threshold on the anomaly score. 0 (default) =
    /// auto-calibrate to the (1 − target_false_positive_rate) quantile of
    /// held-out enrolment scores.
    double z_threshold = 0.0;

    /// Clean-data false-positive budget for auto-calibration.
    double target_false_positive_rate = 0.02;

    SignatureMode mode = SignatureMode::InputLineCurrents;
};

/// Class-conditional current profile learned from clean data.
class CurrentSignatureDetector {
public:
    /// Enrols the detector on clean inputs: runs each sample through the
    /// deployed network, records (predicted class, signature), and fits
    /// per-class component means/stds. Classes never predicted during
    /// enrolment fall back to the global profile.
    CurrentSignatureDetector(const xbar::CrossbarNetwork& hardware,
                             const data::Dataset& clean_enrollment,
                             DetectorConfig config = {});

    /// True when the input's current signature is anomalous for the class
    /// the network assigns it.
    bool is_adversarial(const tensor::Vector& u) const;

    /// The decision statistic: the worst per-component *envelope
    /// exceedance*. For each component the enrolment fits a class-
    /// conditional operating range [lo, hi]; the score is
    /// max_d (distance of sig_d outside [lo_d, hi_d]) / range_d.
    /// Inside the envelope the score is 0. Per-line currents are bimodal
    /// (ink / no ink), so range-based scoring is far more robust than
    /// z-scores here — and it matches the physics: a clean input can
    /// never draw more than v_max·G_j on line j.
    double anomaly_score(const tensor::Vector& u) const;

    /// Fraction of a batch flagged (false-positive rate on clean data,
    /// detection rate on adversarial batches).
    double flagged_fraction(const tensor::Matrix& inputs) const;

    /// The decision threshold in effect (manual or auto-calibrated).
    double threshold() const { return threshold_; }

    const DetectorConfig& config() const { return config_; }

private:
    struct ClassProfile {
        std::vector<double> lo;
        std::vector<double> hi;
        std::vector<double> range;  ///< hi − lo, floored
        bool enrolled = false;
    };

    tensor::Vector signature(const tensor::Vector& u) const;

    const xbar::CrossbarNetwork* hardware_;
    DetectorConfig config_;
    std::vector<ClassProfile> profiles_;
    ClassProfile global_;
    double threshold_ = 0.0;
};

}  // namespace xbarsec::sidechannel
