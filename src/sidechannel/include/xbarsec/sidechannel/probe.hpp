// Power-side-channel probing: recovering column 1-norms from total
// crossbar current (Section II-B of the paper).
//
// With the one-sided mapping, probing input j with u = V·e_j yields
//   i_total = V·G_j = V·(2M·g_off + scale·‖W[:,j]‖₁),
// so one measurement per input line recovers every column's conductance
// sum, and — given the device parameters — the weight-unit 1-norm. With
// read noise, repeated measurements are averaged; the estimator variance
// shrinks as 1/repeats (tested).
//
// The probe operates through a measurement callback so it can run against
// a raw Crossbar, a core::CrossbarOracle, or an obfuscated channel
// identically.
#pragma once

#include <cstdint>
#include <functional>

#include "xbarsec/tensor/vector.hpp"
#include "xbarsec/xbar/crossbar.hpp"

namespace xbarsec::sidechannel {

/// Total-current measurement function: maps an input voltage vector to
/// the observed supply current (amperes).
using TotalCurrentFn = std::function<double(const tensor::Vector&)>;

/// Batched variant: row r of the argument is one probe input; the result
/// holds one reading per row. Lets the probe ride the oracle/crossbar
/// batch fast path instead of issuing one query at a time.
using BatchTotalCurrentFn = std::function<tensor::Vector(const tensor::Matrix&)>;

/// Result of probing all columns.
struct ProbeResult {
    /// Estimated per-column conductance sums Ĝ_j (siemens).
    tensor::Vector conductance_sums;

    /// Number of total-current measurements consumed.
    std::uint64_t queries = 0;
};

/// Probe options.
struct ProbeOptions {
    /// Probe voltage V applied to the selected line (others grounded).
    double probe_voltage = 1.0;

    /// Measurements averaged per column (>= 1).
    std::size_t repeats = 1;
};

/// Probes every column of an n-input crossbar through `measure`.
ProbeResult probe_columns(const TotalCurrentFn& measure, std::size_t n,
                          const ProbeOptions& options = {});

/// Batched probe: same estimator and measurement order as the scalar
/// overload (column j's repeats are consecutive rows), issued as basis
/// batches capped at a few MiB so wide arrays stay cache-resident.
ProbeResult probe_columns_batch(const BatchTotalCurrentFn& measure, std::size_t n,
                                const ProbeOptions& options = {});

/// Convenience overload measuring a Crossbar directly (through its
/// batched total-current path).
ProbeResult probe_columns(const xbar::Crossbar& crossbar, const ProbeOptions& options = {});

/// Converts conductance sums to weight-unit column 1-norms given the
/// mapping parameters: ‖W[:,j]‖₁ ≈ (Ĝ_j − 2M·g_off) / scale.
tensor::Vector conductance_to_l1(const tensor::Vector& conductance_sums, std::size_t rows,
                                 double g_off, double weight_scale);

/// Relative ℓ2 estimation error against a ground-truth vector:
/// ‖est − truth‖₂ / ‖truth‖₂ (truth must be non-zero).
double relative_error(const tensor::Vector& estimate, const tensor::Vector& truth);

/// Top-k agreement between two rankings: the fraction of the true top-k
/// indices recovered in the estimated top-k. This is the metric that
/// matters for the Figure-4 attacks (only the ranking is consumed).
double topk_agreement(const tensor::Vector& estimate, const tensor::Vector& truth, std::size_t k);

}  // namespace xbarsec::sidechannel
