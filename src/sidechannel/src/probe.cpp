#include "xbarsec/sidechannel/probe.hpp"

#include <algorithm>
#include <numeric>

#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::sidechannel {

ProbeResult probe_columns(const TotalCurrentFn& measure, std::size_t n,
                          const ProbeOptions& options) {
    XS_EXPECTS(measure != nullptr);
    XS_EXPECTS(n > 0);
    XS_EXPECTS(options.probe_voltage > 0.0);
    XS_EXPECTS(options.repeats >= 1);

    ProbeResult result;
    result.conductance_sums = tensor::Vector(n, 0.0);
    tensor::Vector probe(n, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
        probe[j] = options.probe_voltage;
        double acc = 0.0;
        for (std::size_t r = 0; r < options.repeats; ++r) {
            acc += measure(probe);
            ++result.queries;
        }
        result.conductance_sums[j] = acc / (static_cast<double>(options.repeats) * options.probe_voltage);
        probe[j] = 0.0;
    }
    return result;
}

ProbeResult probe_columns_batch(const BatchTotalCurrentFn& measure, std::size_t n,
                                const ProbeOptions& options) {
    XS_EXPECTS(measure != nullptr);
    XS_EXPECTS(n > 0);
    XS_EXPECTS(options.probe_voltage > 0.0);
    XS_EXPECTS(options.repeats >= 1);

    ProbeResult result;
    result.conductance_sums = tensor::Vector(n, 0.0);

    // Cap each basis batch at ~4 MiB of probe rows; column j's repeats are
    // consecutive rows, so the measurement (and noise-draw) order matches
    // the scalar probe loop.
    const std::size_t rows_budget = std::max<std::size_t>(1, (std::size_t{4} << 20) / (8 * n));
    const std::size_t cols_per_chunk = std::max<std::size_t>(1, rows_budget / options.repeats);

    for (std::size_t j0 = 0; j0 < n; j0 += cols_per_chunk) {
        const std::size_t j1 = std::min(j0 + cols_per_chunk, n);
        tensor::Matrix probes((j1 - j0) * options.repeats, n, 0.0);
        for (std::size_t j = j0; j < j1; ++j) {
            for (std::size_t r = 0; r < options.repeats; ++r) {
                probes((j - j0) * options.repeats + r, j) = options.probe_voltage;
            }
        }
        const tensor::Vector readings = measure(probes);
        XS_EXPECTS(readings.size() == probes.rows());
        result.queries += probes.rows();
        for (std::size_t j = j0; j < j1; ++j) {
            double acc = 0.0;
            for (std::size_t r = 0; r < options.repeats; ++r) {
                acc += readings[(j - j0) * options.repeats + r];
            }
            result.conductance_sums[j] =
                acc / (static_cast<double>(options.repeats) * options.probe_voltage);
        }
    }
    return result;
}

ProbeResult probe_columns(const xbar::Crossbar& crossbar, const ProbeOptions& options) {
    return probe_columns_batch(
        [&crossbar](const tensor::Matrix& V) { return crossbar.total_current_batch(V); },
        crossbar.cols(), options);
}

tensor::Vector conductance_to_l1(const tensor::Vector& conductance_sums, std::size_t rows,
                                 double g_off, double weight_scale) {
    XS_EXPECTS(weight_scale > 0.0);
    XS_EXPECTS(g_off >= 0.0);
    tensor::Vector l1(conductance_sums.size());
    const double offset = 2.0 * static_cast<double>(rows) * g_off;
    for (std::size_t j = 0; j < l1.size(); ++j) {
        l1[j] = std::max(0.0, (conductance_sums[j] - offset) / weight_scale);
    }
    return l1;
}

double relative_error(const tensor::Vector& estimate, const tensor::Vector& truth) {
    XS_EXPECTS(estimate.size() == truth.size());
    const double denom = tensor::norm2(truth);
    XS_EXPECTS_MSG(denom > 0.0, "relative_error needs a non-zero ground truth");
    tensor::Vector diff = estimate;
    diff -= truth;
    return tensor::norm2(diff) / denom;
}

double topk_agreement(const tensor::Vector& estimate, const tensor::Vector& truth,
                      std::size_t k) {
    XS_EXPECTS(estimate.size() == truth.size());
    XS_EXPECTS(k >= 1 && k <= truth.size());
    auto top_indices = [k](const tensor::Vector& v) {
        std::vector<std::size_t> idx(v.size());
        std::iota(idx.begin(), idx.end(), std::size_t{0});
        std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k), idx.end(),
                          [&v](std::size_t a, std::size_t b) { return v[a] > v[b]; });
        idx.resize(k);
        std::sort(idx.begin(), idx.end());
        return idx;
    };
    const auto te = top_indices(estimate);
    const auto tt = top_indices(truth);
    std::vector<std::size_t> common;
    std::set_intersection(te.begin(), te.end(), tt.begin(), tt.end(), std::back_inserter(common));
    return static_cast<double>(common.size()) / static_cast<double>(k);
}

}  // namespace xbarsec::sidechannel
