#include "xbarsec/sidechannel/obfuscation.hpp"

#include <memory>

#include "xbarsec/common/rng.hpp"
#include "xbarsec/tensor/ops.hpp"

namespace xbarsec::sidechannel {

TotalCurrentFn make_dithered_measure(TotalCurrentFn measure, double sigma_amps,
                                     std::uint64_t seed) {
    XS_EXPECTS(measure != nullptr);
    XS_EXPECTS(sigma_amps >= 0.0);
    // Shared mutable RNG: the lambda must be copyable (std::function).
    auto rng = std::make_shared<Rng>(seed);
    return [measure = std::move(measure), sigma_amps, rng](const tensor::Vector& v) {
        return measure(v) + rng->normal(0.0, sigma_amps);
    };
}

TotalCurrentFn make_uniform_dummy_measure(TotalCurrentFn measure, double g_dummy) {
    XS_EXPECTS(measure != nullptr);
    XS_EXPECTS(g_dummy >= 0.0);
    return [measure = std::move(measure), g_dummy](const tensor::Vector& v) {
        return measure(v) + g_dummy * tensor::sum(v);
    };
}

TotalCurrentFn make_dummy_load_measure(TotalCurrentFn measure, tensor::Vector g_line) {
    XS_EXPECTS(measure != nullptr);
    return [measure = std::move(measure), g_line = std::move(g_line)](const tensor::Vector& v) {
        return measure(v) + tensor::dot(g_line, v);
    };
}

TotalCurrentFn make_random_dummy_measure(TotalCurrentFn measure, std::size_t n,
                                         double g_dummy_max, std::uint64_t seed) {
    XS_EXPECTS(g_dummy_max >= 0.0);
    Rng rng(seed);
    return make_dummy_load_measure(std::move(measure),
                                   tensor::Vector::random_uniform(rng, n, 0.0, g_dummy_max));
}

}  // namespace xbarsec::sidechannel
