#include "xbarsec/sidechannel/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/stats/descriptive.hpp"

namespace xbarsec::sidechannel {

tensor::Vector CurrentSignatureDetector::signature(const tensor::Vector& u) const {
    switch (config_.mode) {
        case SignatureMode::TotalCurrent: {
            tensor::Vector sig(1);
            sig[0] = hardware_->total_current(u);
            return sig;
        }
        case SignatureMode::OutputCurrents: return hardware_->crossbar().output_currents(u);
        case SignatureMode::InputLineCurrents:
            return hardware_->crossbar().input_line_currents(u);
    }
    XS_EXPECTS_MSG(false, "unhandled signature mode");
    return {};
}

CurrentSignatureDetector::CurrentSignatureDetector(const xbar::CrossbarNetwork& hardware,
                                                   const data::Dataset& clean_enrollment,
                                                   DetectorConfig config)
    : hardware_(&hardware), config_(config) {
    XS_EXPECTS(config.z_threshold >= 0.0);
    XS_EXPECTS(config.target_false_positive_rate > 0.0 &&
               config.target_false_positive_rate < 1.0);
    XS_EXPECTS(clean_enrollment.size() >= 2);
    XS_EXPECTS(clean_enrollment.input_dim() == hardware.inputs());

    const std::size_t classes = hardware.outputs();
    std::size_t dims = 1;
    if (config_.mode == SignatureMode::OutputCurrents) dims = hardware.outputs();
    if (config_.mode == SignatureMode::InputLineCurrents) dims = hardware.inputs();

    // Split the enrolment set: even indices fit the profiles, odd indices
    // calibrate the threshold. Calibrating on the fitting samples would
    // bias the threshold low (their scores shrink toward their own
    // profiles) and inflate the held-out false-positive rate.
    const bool auto_calibrate = config_.z_threshold == 0.0;
    std::vector<std::size_t> fit_idx, cal_idx;
    for (std::size_t i = 0; i < clean_enrollment.size(); ++i) {
        if (!auto_calibrate || i % 2 == 0) fit_idx.push_back(i);
        else cal_idx.push_back(i);
    }

    struct Envelope {
        std::vector<double> lo, hi;
        std::size_t count = 0;
        void init(std::size_t d) {
            lo.assign(d, std::numeric_limits<double>::infinity());
            hi.assign(d, -std::numeric_limits<double>::infinity());
        }
        void push(const tensor::Vector& sig) {
            for (std::size_t d = 0; d < lo.size(); ++d) {
                lo[d] = std::min(lo[d], sig[d]);
                hi[d] = std::max(hi[d], sig[d]);
            }
            ++count;
        }
    };
    std::vector<Envelope> per_class(classes);
    Envelope global;
    global.init(dims);
    for (auto& e : per_class) e.init(dims);

    for (const std::size_t i : fit_idx) {
        const tensor::Vector u = clean_enrollment.input(i);
        const auto label = static_cast<std::size_t>(hardware.classify(u));
        const tensor::Vector sig = signature(u);
        per_class[label].push(sig);
        global.push(sig);
    }

    auto finalize = [dims](const Envelope& env, ClassProfile& out) {
        out.lo = env.lo;
        out.hi = env.hi;
        out.range.resize(dims);
        double range_sum = 0.0;
        for (std::size_t d = 0; d < dims; ++d) range_sum += env.hi[d] - env.lo[d];
        // Floor each component's range at 10% of the mean range so
        // near-constant components cannot produce unbounded exceedance
        // ratios from measurement dust.
        const double floor_range =
            std::max(1e-18, 0.10 * range_sum / static_cast<double>(dims));
        for (std::size_t d = 0; d < dims; ++d) {
            out.range[d] = std::max(env.hi[d] - env.lo[d], floor_range);
        }
        out.enrolled = true;
    };

    finalize(global, global_);
    profiles_.resize(classes);
    for (std::size_t c = 0; c < classes; ++c) {
        if (per_class[c].count >= 2) {
            finalize(per_class[c], profiles_[c]);
        } else {
            // Rarely-predicted class: fall back to the global profile.
            profiles_[c] = global_;
        }
    }

    if (!auto_calibrate) {
        threshold_ = config_.z_threshold;
    } else {
        XS_EXPECTS_MSG(cal_idx.size() >= 10,
                       "auto-calibration needs at least ~20 enrolment samples");
        std::vector<double> scores(cal_idx.size());
        for (std::size_t k = 0; k < cal_idx.size(); ++k) {
            scores[k] = anomaly_score(clean_enrollment.input(cal_idx[k]));
        }
        threshold_ = stats::quantile(scores, 1.0 - config_.target_false_positive_rate);
    }
}

double CurrentSignatureDetector::anomaly_score(const tensor::Vector& u) const {
    XS_EXPECTS(u.size() == hardware_->inputs());
    const auto label = static_cast<std::size_t>(hardware_->classify(u));
    const tensor::Vector sig = signature(u);
    const ClassProfile& p = profiles_[label];
    double worst = 0.0;
    for (std::size_t d = 0; d < sig.size(); ++d) {
        const double exceed = std::max(sig[d] - p.hi[d], p.lo[d] - sig[d]);
        if (exceed > 0.0) worst = std::max(worst, exceed / p.range[d]);
    }
    return worst;
}

bool CurrentSignatureDetector::is_adversarial(const tensor::Vector& u) const {
    return anomaly_score(u) > threshold_;
}

double CurrentSignatureDetector::flagged_fraction(const tensor::Matrix& inputs) const {
    XS_EXPECTS(inputs.rows() > 0);
    std::size_t flagged = 0;
    for (std::size_t i = 0; i < inputs.rows(); ++i) {
        if (is_adversarial(inputs.row(i))) ++flagged;
    }
    return static_cast<double>(flagged) / static_cast<double>(inputs.rows());
}

}  // namespace xbarsec::sidechannel
