#include "xbarsec/sidechannel/search.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "xbarsec/common/contracts.hpp"
#include "xbarsec/common/rng.hpp"

namespace xbarsec::sidechannel {

std::string to_string(SearchStrategy s) {
    switch (s) {
        case SearchStrategy::FullScan: return "full-scan";
        case SearchStrategy::RandomSubset: return "random-subset";
        case SearchStrategy::HillClimb: return "hill-climb";
        case SearchStrategy::CoarseToFine: return "coarse-to-fine";
    }
    return "?";
}

namespace {

/// Caches field probes so revisited indices cost no extra queries (the
/// attacker would memoise measurements the same way).
class CachedField {
public:
    CachedField(const FieldFn& field, std::uint64_t& queries) : field_(field), queries_(queries) {}

    double at(std::size_t j) {
        const auto it = cache_.find(j);
        if (it != cache_.end()) return it->second;
        const double v = field_(j);
        ++queries_;
        cache_.emplace(j, v);
        return v;
    }

private:
    const FieldFn& field_;
    std::uint64_t& queries_;
    std::unordered_map<std::size_t, double> cache_;
};

/// 4/8-neighbourhood within one channel plane of an image-shaped index
/// space.
std::vector<std::size_t> neighbours(std::size_t j, const data::ImageShape& shape) {
    const std::size_t plane = shape.height * shape.width;
    const std::size_t channel = j / plane;
    const std::size_t in_plane = j % plane;
    const std::size_t y = in_plane / shape.width;
    const std::size_t x = in_plane % shape.width;
    std::vector<std::size_t> out;
    out.reserve(8);
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            const auto ny = static_cast<long long>(y) + dy;
            const auto nx = static_cast<long long>(x) + dx;
            if (ny < 0 || nx < 0 || ny >= static_cast<long long>(shape.height) ||
                nx >= static_cast<long long>(shape.width)) {
                continue;
            }
            out.push_back(channel * plane + static_cast<std::size_t>(ny) * shape.width +
                          static_cast<std::size_t>(nx));
        }
    }
    return out;
}

SearchResult full_scan(CachedField& field, std::size_t n) {
    SearchResult r;
    r.best_value = field.at(0);
    for (std::size_t j = 1; j < n; ++j) {
        const double v = field.at(j);
        if (v > r.best_value) {
            r.best_value = v;
            r.best_index = j;
        }
    }
    return r;
}

SearchResult random_subset(CachedField& field, std::size_t n, const SearchOptions& options) {
    Rng rng(options.seed);
    const std::size_t budget = std::min(options.budget, n);
    const auto picks = sample_without_replacement(rng, n, budget);
    SearchResult r;
    r.best_index = picks[0];
    r.best_value = field.at(picks[0]);
    for (std::size_t k = 1; k < picks.size(); ++k) {
        const double v = field.at(picks[k]);
        if (v > r.best_value) {
            r.best_value = v;
            r.best_index = picks[k];
        }
    }
    return r;
}

SearchResult hill_climb(CachedField& field, std::size_t n, const data::ImageShape& shape,
                        const SearchOptions& options) {
    Rng rng(options.seed);
    SearchResult r;
    bool first = true;
    std::uint64_t spent = 0;  // approximate local budget split across restarts
    const std::uint64_t per_restart =
        std::max<std::uint64_t>(1, options.budget / std::max<std::size_t>(1, options.restarts));
    for (std::size_t restart = 0; restart < std::max<std::size_t>(1, options.restarts); ++restart) {
        std::size_t cur = static_cast<std::size_t>(rng.below(n));
        double cur_v = field.at(cur);
        std::uint64_t local = 1;
        for (;;) {
            std::size_t best_n = cur;
            double best_nv = cur_v;
            for (const std::size_t nb : neighbours(cur, shape)) {
                if (local >= per_restart) break;
                const double v = field.at(nb);
                ++local;
                if (v > best_nv) {
                    best_nv = v;
                    best_n = nb;
                }
            }
            if (best_n == cur) break;  // local maximum
            cur = best_n;
            cur_v = best_nv;
            if (local >= per_restart) break;
        }
        spent += local;
        if (first || cur_v > r.best_value) {
            first = false;
            r.best_index = cur;
            r.best_value = cur_v;
        }
        if (spent >= options.budget) break;
    }
    return r;
}

SearchResult coarse_to_fine(CachedField& field, std::size_t n, const data::ImageShape& shape,
                            const SearchOptions& options) {
    const std::size_t plane = shape.height * shape.width;
    const std::size_t channels = std::max<std::size_t>(1, n / std::max<std::size_t>(1, plane));
    SearchResult r;
    bool first = true;
    // Coarse pass: stride grid over each channel plane.
    const std::size_t stride = std::max<std::size_t>(1, options.stride);
    for (std::size_t c = 0; c < channels; ++c) {
        for (std::size_t y = 0; y < shape.height; y += stride) {
            for (std::size_t x = 0; x < shape.width; x += stride) {
                const std::size_t j = c * plane + y * shape.width + x;
                if (j >= n) continue;
                const double v = field.at(j);
                if (first || v > r.best_value) {
                    first = false;
                    r.best_value = v;
                    r.best_index = j;
                }
            }
        }
    }
    // Refinement passes: shrink the stride around the incumbent.
    std::size_t s = stride;
    while (s > 1) {
        s /= 2;
        const std::size_t plane_idx = r.best_index % plane;
        const std::size_t c = r.best_index / plane;
        const std::size_t cy = plane_idx / shape.width;
        const std::size_t cx = plane_idx % shape.width;
        for (long long dy = -static_cast<long long>(s); dy <= static_cast<long long>(s);
             dy += static_cast<long long>(std::max<std::size_t>(1, s))) {
            for (long long dx = -static_cast<long long>(s); dx <= static_cast<long long>(s);
                 dx += static_cast<long long>(std::max<std::size_t>(1, s))) {
                const long long ny = static_cast<long long>(cy) + dy;
                const long long nx = static_cast<long long>(cx) + dx;
                if (ny < 0 || nx < 0 || ny >= static_cast<long long>(shape.height) ||
                    nx >= static_cast<long long>(shape.width)) {
                    continue;
                }
                const std::size_t j =
                    c * plane + static_cast<std::size_t>(ny) * shape.width + static_cast<std::size_t>(nx);
                if (j >= n) continue;
                const double v = field.at(j);
                if (v > r.best_value) {
                    r.best_value = v;
                    r.best_index = j;
                }
            }
        }
    }
    return r;
}

}  // namespace

SearchResult find_argmax(const FieldFn& field, const data::ImageShape& shape,
                         SearchStrategy strategy, const SearchOptions& options) {
    XS_EXPECTS(field != nullptr);
    const std::size_t n = shape.pixels();
    XS_EXPECTS(n > 0);
    XS_EXPECTS(options.budget >= 1);

    std::uint64_t queries = 0;
    CachedField cached(field, queries);
    SearchResult r;
    switch (strategy) {
        case SearchStrategy::FullScan: r = full_scan(cached, n); break;
        case SearchStrategy::RandomSubset: r = random_subset(cached, n, options); break;
        case SearchStrategy::HillClimb: r = hill_climb(cached, n, shape, options); break;
        case SearchStrategy::CoarseToFine: r = coarse_to_fine(cached, n, shape, options); break;
    }
    r.queries = queries;
    return r;
}

}  // namespace xbarsec::sidechannel
